#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "model/metrics.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "rng/alias_table.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "schedule/schedule.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

enum class EventType : uint8_t {
  // Order matters for simultaneous events: process the source update first,
  // then the sync (a sync at time t picks up an update at time t), and score
  // accesses against the post-transition state.
  kUpdate = 0,
  kSync = 1,
  kAccess = 2,
};

struct SimEvent {
  double time;
  EventType type;
  uint32_t element;
};

// Everything one element shard produces; merged in shard order. The float
// fields are per-shard Kahan totals — combining them in shard-index order
// keeps SimulationResult bit-identical at every thread count.
struct ShardStats {
  double freshness_integral = 0.0;  // integral of shard fresh_count dt.
  double age_sum = 0.0;
  uint64_t accesses = 0;  // Post-warmup counts.
  uint64_t fresh_accesses = 0;
  uint64_t updates = 0;
  uint64_t syncs = 0;
  uint64_t total_events = 0;  // Whole-horizon event count (metrics).
  uint64_t total_syncs = 0;   // Whole-horizon sync count (metrics).
};

// Registered once; updated lock-free per Run.
struct SimMetrics {
  obs::Counter* runs;
  obs::Counter* update_events;
  obs::Counter* sync_events;
  obs::Counter* access_events;
  obs::Gauge* queue_depth;
  obs::Gauge* events_per_second;
};

const SimMetrics& GetSimMetrics() {
  static const SimMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return SimMetrics{
        registry.GetCounter("freshen_sim_runs_total"),
        registry.GetCounter("freshen_sim_events_total",
                            {{"type", "update"}}),
        registry.GetCounter("freshen_sim_events_total", {{"type", "sync"}}),
        registry.GetCounter("freshen_sim_events_total",
                            {{"type", "access"}}),
        registry.GetGauge("freshen_sim_event_queue_depth"),
        registry.GetGauge("freshen_sim_events_per_second")};
  }();
  return metrics;
}

}  // namespace

MirrorSimulator::MirrorSimulator(ElementSet elements, SimulationConfig config)
    : elements_(std::move(elements)), config_(config) {}

Result<SimulationResult> MirrorSimulator::Run(
    const std::vector<double>& frequencies) const {
  if (frequencies.size() != elements_.size()) {
    return Status::InvalidArgument(
        StrFormat("got %zu frequencies for %zu elements", frequencies.size(),
                  elements_.size()));
  }
  if (elements_.empty()) {
    return Status::InvalidArgument("catalog is empty");
  }
  if (!(config_.horizon_periods > 0.0)) {
    return Status::InvalidArgument("horizon must be positive");
  }
  if (!(config_.warmup_periods >= 0.0) ||
      config_.warmup_periods >= config_.horizon_periods) {
    return Status::InvalidArgument("warmup must be in [0, horizon)");
  }
  for (size_t i = 0; i < frequencies.size(); ++i) {
    if (!(frequencies[i] >= 0.0) || !std::isfinite(frequencies[i])) {
      return Status::InvalidArgument(
          StrFormat("frequency %zu is negative or non-finite", i));
    }
  }
  obs::ScopedSpan run_span("sim_run");
  WallTimer run_timer;
  const double horizon = config_.horizon_periods;
  const double warmup = config_.warmup_periods;
  const size_t n = elements_.size();
  const par::Executor exec(config_.threads);
  const std::vector<par::Shard> plan = par::ShardPlan(n);

  // Per-element RNG streams, forked from the root exactly as a sequential
  // run would (one fork per updating element, in index order; one fork per
  // element for the Poisson sync policy). Shards then reconstruct their
  // elements' streams from these seeds, so the event timeline is identical
  // to the sequential fork order no matter how shards are scheduled.
  std::vector<uint64_t> update_seeds(n, 0);
  {
    Rng update_rng(config_.seed ^ 0x75706474ULL);
    for (size_t i = 0; i < n; ++i) {
      if (elements_[i].change_rate > 0.0) update_seeds[i] = update_rng.NextUint64();
    }
  }
  std::vector<uint64_t> sync_seeds;
  if (config_.sync_policy == SyncPolicy::kPoisson) {
    sync_seeds.resize(n);
    Rng sync_root(config_.seed ^ 0x706f6973ULL);
    for (size_t i = 0; i < n; ++i) sync_seeds[i] = sync_root.NextUint64();
  }

  // User Request Generator: one global Poisson arrival stream with elements
  // drawn from the master profile. Inherently sequential (each arrival
  // advances the shared stream), so accesses are generated here and routed
  // to the owning shard's queue; everything per-element runs sharded below.
  std::vector<std::vector<SimEvent>> shard_accesses(plan.size());
  uint64_t planned_accesses = 0;
  std::vector<double> probs = AccessProbs(elements_);
  const double prob_total = Sum(probs);
  if (config_.accesses_per_period > 0.0 && prob_total > 0.0) {
    AliasTable table(probs);
    Rng access_rng(config_.seed ^ 0x61636373ULL);
    for (double t = SampleExponential(access_rng, config_.accesses_per_period);
         t < horizon;
         t += SampleExponential(access_rng, config_.accesses_per_period)) {
      const auto element = static_cast<uint32_t>(table.Sample(access_rng));
      shard_accesses[par::ShardIndexOf(n, element)].push_back(
          {t, EventType::kAccess, element});
      ++planned_accesses;
    }
  }

  // Each shard owns its elements outright: their sync timeline, update
  // streams, mirror state, and the accesses routed above. Statistics land
  // in the shard's own slot; nothing is shared across shards. Per-element
  // post-warmup stale time lands in `stale_time` (each shard writes only
  // its own slice) — the attribution ledger and the measured weighted
  // freshness below are both built from it.
  std::vector<ShardStats> stats(plan.size());
  std::vector<double> stale_time(n, 0.0);
  obs::StalenessTimeline* const timeline = config_.timeline;
  obs::EventRecorder& recorder = obs::EventRecorder::Global();
  exec.ForShards(plan, [&](const par::Shard& shard) {
    std::vector<SimEvent> events = std::move(shard_accesses[shard.index]);
    const size_t shard_access_count = events.size();
    ShardStats& out = stats[shard.index];

    // Synchronization Scheduler: this shard's slice of the sync timeline.
    for (size_t i = shard.begin; i < shard.end; ++i) {
      const auto element = static_cast<uint32_t>(i);
      if (config_.sync_policy == SyncPolicy::kFixedOrder) {
        ForEachFixedOrderSyncTime(i, n, frequencies[i], horizon, [&](double t) {
          events.push_back({t, EventType::kSync, element});
        });
      } else {
        Rng rng(sync_seeds[i]);
        ForEachPoissonSyncTime(frequencies[i], horizon, rng, [&](double t) {
          events.push_back({t, EventType::kSync, element});
        });
      }
    }
    out.total_syncs = events.size() - shard_access_count;

    // Update Generator: per-element Poisson change processes at the source.
    for (size_t i = shard.begin; i < shard.end; ++i) {
      const double lambda = elements_[i].change_rate;
      if (lambda <= 0.0) continue;
      Rng element_rng(update_seeds[i]);
      for (double t = SampleExponential(element_rng, lambda); t < horizon;
           t += SampleExponential(element_rng, lambda)) {
        events.push_back({t, EventType::kUpdate, static_cast<uint32_t>(i)});
      }
    }

    std::sort(events.begin(), events.end(),
              [](const SimEvent& a, const SimEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                return static_cast<uint8_t>(a.type) <
                       static_cast<uint8_t>(b.type);
              });
    out.total_events = events.size();

    // Shard milestone span on the shard's own virtual track — content is a
    // pure function of (catalog, seed, shard plan), so the merged virtual
    // dump is identical at any thread count.
    if (recorder.enabled()) {
      obs::Event milestone;
      milestone.name = "sim_shard";
      milestone.category = "sim";
      milestone.clock = obs::EventClock::kVirtual;
      milestone.track = obs::kTrackSimShardBase + shard.index;
      milestone.phase = obs::EventPhase::kBegin;
      milestone.ts = 0.0;
      milestone.arg0 = static_cast<double>(shard.size());
      milestone.arg0_name = "elements";
      milestone.arg1 = static_cast<double>(events.size());
      milestone.arg1_name = "events";
      recorder.Emit(milestone);
    }

    // Mirror state for this shard's elements (indexed relative to begin):
    // every copy starts in sync with the source.
    const size_t width = shard.size();
    std::vector<uint8_t> fresh(width, 1);
    // Time of the first source update the mirror has not yet picked up
    // (defined only while stale); drives the age metric.
    std::vector<double> stale_since(width, 0.0);

    size_t fresh_count = width;
    double prev_time = warmup;
    KahanSum freshness_integral;  // integral of fresh_count dt, post-warmup.
    KahanSum age_sum;

    for (const SimEvent& event : events) {
      if (event.time >= warmup) {
        freshness_integral.Add(static_cast<double>(fresh_count) *
                               (event.time - prev_time));
        prev_time = event.time;
      }
      const size_t local = event.element - shard.begin;
      switch (event.type) {
        case EventType::kUpdate:
          if (event.time >= warmup) ++out.updates;
          if (fresh[local]) {
            fresh[local] = 0;
            stale_since[local] = event.time;
            --fresh_count;
            if (timeline != nullptr) {
              timeline->MarkStale(event.element, event.time);
            }
          }
          break;
        case EventType::kSync:
          if (event.time >= warmup) ++out.syncs;
          if (!fresh[local]) {
            fresh[local] = 1;
            ++fresh_count;
            // Same clamp arithmetic as StalenessTimeline::ClampedInterval
            // over [warmup, horizon], so the two ledgers agree per element
            // to the bit.
            stale_time[event.element] +=
                std::max(0.0, std::min(event.time, horizon) -
                                  std::max(stale_since[local], warmup));
            if (timeline != nullptr) {
              timeline->MarkFresh(event.element, event.time);
            }
          }
          break;
        case EventType::kAccess:
          if (event.time < warmup) break;
          ++out.accesses;
          if (fresh[local]) {
            ++out.fresh_accesses;
            age_sum.Add(0.0);
            if (timeline != nullptr) {
              timeline->OnAccess(event.element, event.time, 0.0);
            }
          } else {
            age_sum.Add(event.time - stale_since[local]);
            if (timeline != nullptr) {
              timeline->OnAccess(event.element, event.time,
                                 event.time - stale_since[local]);
            }
          }
          break;
      }
    }
    // Close the integration window at the horizon.
    freshness_integral.Add(static_cast<double>(fresh_count) *
                           (horizon - prev_time));
    out.freshness_integral = freshness_integral.Total();
    out.age_sum = age_sum.Total();
    // Charge still-open stale intervals up to the horizon (the timeline does
    // the same at Finalize, with the same arithmetic).
    for (size_t i = shard.begin; i < shard.end; ++i) {
      const size_t local = i - shard.begin;
      if (!fresh[local]) {
        stale_time[i] +=
            std::max(0.0, horizon - std::max(stale_since[local], warmup));
      }
    }
    if (recorder.enabled()) {
      obs::Event milestone;
      milestone.name = "sim_shard";
      milestone.category = "sim";
      milestone.clock = obs::EventClock::kVirtual;
      milestone.track = obs::kTrackSimShardBase + shard.index;
      milestone.phase = obs::EventPhase::kEnd;
      milestone.ts = horizon;
      milestone.arg0 = static_cast<double>(shard.size());
      milestone.arg0_name = "elements";
      milestone.arg1 = static_cast<double>(out.total_events);
      milestone.arg1_name = "events";
      recorder.Emit(milestone);
    }
  });

  // Merge in shard-index order: integer counts are exact in any order; the
  // float totals are combined with the same fixed Kahan tree every run.
  KahanSum freshness_integral;
  KahanSum age_sum;
  uint64_t accesses = 0;
  uint64_t fresh_accesses = 0;
  uint64_t updates = 0;
  uint64_t syncs = 0;
  uint64_t total_events = 0;
  uint64_t total_syncs = 0;
  for (const ShardStats& shard : stats) {
    freshness_integral.Add(shard.freshness_integral);
    age_sum.Add(shard.age_sum);
    accesses += shard.accesses;
    fresh_accesses += shard.fresh_accesses;
    updates += shard.updates;
    syncs += shard.syncs;
    total_events += shard.total_events;
    total_syncs += shard.total_syncs;
  }

  SimulationResult result;
  result.num_accesses = accesses;
  result.num_updates = updates;
  result.num_syncs = syncs;
  result.empirical_perceived_freshness =
      accesses > 0 ? static_cast<double>(fresh_accesses) /
                         static_cast<double>(accesses)
                   : 0.0;
  result.empirical_general_freshness =
      freshness_integral.Total() /
      (static_cast<double>(n) * (horizon - warmup));
  result.empirical_perceived_age =
      accesses > 0 ? age_sum.Total() / static_cast<double>(accesses) : 0.0;
  result.analytic_perceived_freshness =
      PerceivedFreshness(elements_, frequencies, config_.sync_policy);
  result.analytic_general_freshness =
      GeneralFreshness(elements_, frequencies, config_.sync_policy);

  // Weighted time-in-fresh over [warmup, horizon]: the same per-element
  // stale_time the timeline accumulates, normalized weights, summed with the
  // timeline's index-order Kahan tree — thread-count invariant and within
  // float rounding of a timeline fed by this run.
  if (prob_total > 0.0) {
    const double span = horizon - warmup;
    double sum = 0.0;
    double comp = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double w = probs[i] / prob_total;
      const double stale = std::min(std::max(stale_time[i], 0.0), span);
      const double term = w * (1.0 - stale / span);
      const double y = term - comp;
      const double t = sum + y;
      comp = (t - sum) - y;
      sum = t;
    }
    result.measured_weighted_freshness = sum;
  }

  // Whole-horizon event counts (the post-warmup subset is in `result`).
  const SimMetrics& metrics = GetSimMetrics();
  metrics.runs->Increment();
  metrics.sync_events->Add(static_cast<double>(total_syncs));
  metrics.access_events->Add(static_cast<double>(planned_accesses));
  metrics.update_events->Add(static_cast<double>(
      total_events - total_syncs - planned_accesses));
  metrics.queue_depth->Set(static_cast<double>(total_events));
  const double elapsed = run_timer.ElapsedSeconds();
  if (elapsed > 0.0) {
    metrics.events_per_second->Set(static_cast<double>(total_events) /
                                   elapsed);
  }
  return result;
}

}  // namespace freshen
