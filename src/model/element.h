// The element model: each mirrored object has a Poisson change rate (lambda),
// an access probability from the master profile (p), and a size (s).
#ifndef FRESHEN_MODEL_ELEMENT_H_
#define FRESHEN_MODEL_ELEMENT_H_

#include <cstddef>
#include <vector>

namespace freshen {

/// One local copy in the mirror. Plain data: rates are per sync period, the
/// access probability is the element's share of the master profile, size is
/// in bandwidth units (1.0 = one unit of sync bandwidth per refresh).
struct Element {
  /// Poisson update rate at the source, in updates per period. >= 0.
  double change_rate = 0.0;
  /// Probability that a user access targets this element. In [0, 1].
  double access_prob = 0.0;
  /// Object size in bandwidth units; a refresh costs `size` bandwidth.
  double size = 1.0;
};

/// The mirror's catalog: all elements, indexed by element id (vector index).
using ElementSet = std::vector<Element>;

/// Extracts the change-rate column.
std::vector<double> ChangeRates(const ElementSet& elements);

/// Extracts the access-probability column.
std::vector<double> AccessProbs(const ElementSet& elements);

/// Extracts the size column.
std::vector<double> Sizes(const ElementSet& elements);

/// Builds an ElementSet from parallel columns. `sizes` may be empty, meaning
/// all sizes are 1.0. Column lengths must agree.
ElementSet MakeElementSet(const std::vector<double>& change_rates,
                          const std::vector<double>& access_probs,
                          const std::vector<double>& sizes = {});

}  // namespace freshen

#endif  // FRESHEN_MODEL_ELEMENT_H_
