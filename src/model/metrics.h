// Analytic evaluation of freshness metrics for a synchronization schedule
// (a per-element frequency vector). These implement Definitions 2-4 of the
// paper in their time-averaged, closed-form versions.
#ifndef FRESHEN_MODEL_METRICS_H_
#define FRESHEN_MODEL_METRICS_H_

#include <vector>

#include "model/element.h"
#include "model/freshness.h"

namespace freshen {

/// Time-averaged *perceived* freshness of a schedule: sum_i p_i F(f_i, l_i).
/// This is the paper's objective (Definition 4 combined with the theorem
/// PF = sum p_i * F_i). `frequencies` must match `elements` in length.
double PerceivedFreshness(const ElementSet& elements,
                          const std::vector<double>& frequencies,
                          SyncPolicy policy = SyncPolicy::kFixedOrder);

/// Time-averaged *general* freshness (Definition 2, the metric of [5]):
/// (1/N) sum_i F(f_i, l_i). Ignores the profile.
double GeneralFreshness(const ElementSet& elements,
                        const std::vector<double>& frequencies,
                        SyncPolicy policy = SyncPolicy::kFixedOrder);

/// Time-averaged perceived age: sum_i p_i A(f_i, l_i). Infinite when any
/// accessed element is never synced. Extension metric.
double PerceivedAge(const ElementSet& elements,
                    const std::vector<double>& frequencies);

/// Total bandwidth a schedule consumes per period: sum_i s_i f_i.
double BandwidthUsed(const ElementSet& elements,
                     const std::vector<double>& frequencies);

}  // namespace freshen

#endif  // FRESHEN_MODEL_METRICS_H_
