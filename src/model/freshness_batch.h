// Batched (SIMD) versions of the freshness-divergence kernels the
// water-filling solvers invert in their inner loops: g(r), g^{-1}(y), and
// h^{-1}(y) (see model/freshness.h for the math). These are the hot ~95% of
// a large solve; the batch forms evaluate simd::kLanes elements per
// iteration instead of one.
//
// Contracts:
//   * Lane independence. Each output element depends only on its own
//     (y, seed) pair — never on which lanes it shares a vector with — so
//     batching boundaries (block size, shard plan, tails) cannot change
//     values. This is what lets the solvers keep freshen::par's
//     bit-identical-across-thread-counts guarantee.
//   * Scalar reference equality. RefX(y, seed) runs the identical operation
//     sequence on one lane; BatchX output is bit-identical to calling RefX
//     per element (tests/simd_test.cc enforces it, tails included).
//   * Seeds are hints only. A seed outside the kernel's safeguard bracket
//     (or <= 0, the "no guess" convention) falls back to a cold analytic
//     seed. Passing seeds == nullptr is the all-cold batch: the result is
//     then a pure function of y — the property the multiplier search's
//     canonical probes rely on.
//
// These deliberately do NOT replace the scalar routines in
// model/freshness.h: those remain the simple, libm-based definitions that
// the rest of the codebase (and the tests' independent oracle) use. The two
// implementations agree to ~1e-12 relative; nothing may assume they agree
// bitwise.
#ifndef FRESHEN_MODEL_FRESHNESS_BATCH_H_
#define FRESHEN_MODEL_FRESHNESS_BATCH_H_

#include <cstddef>

namespace freshen {

/// Lane width of the batch kernels (1 on the portable scalar build).
size_t BatchKernelLanes();

/// Backend name: "avx512" | "avx2" | "neon" | "scalar".
const char* BatchKernelBackend();

/// out[i] = g(r[i]) for r[i] >= 0: the marginal-gain kernel
/// g(r) = 1 - (1+r) e^{-r}. Bit-identical to RefMarginalGainG per element.
void BatchMarginalGainG(const double* r, double* out, size_t n);

/// out[i] = g^{-1}(y[i]) for y[i] in (0, 1). seeds may be nullptr (all
/// cold) or point at n warm-start hints. Bit-identical to
/// RefInverseMarginalGainG per element.
void BatchInverseMarginalGainG(const double* y, const double* seeds,
                               double* out, size_t n);

/// out[i] = h^{-1}(y[i]) for y[i] > 0, where h(r) = r^2/2 - g(r) is the
/// age-marginal kernel. Bit-identical to RefInverseAgeMarginalKernelH per
/// element.
void BatchInverseAgeMarginalKernelH(const double* y, const double* seeds,
                                    double* out, size_t n);

/// One-lane references running the exact batch operation sequence.
double RefMarginalGainG(double r);
double RefInverseMarginalGainG(double y, double seed);
double RefInverseAgeMarginalKernelH(double y, double seed);

}  // namespace freshen

#endif  // FRESHEN_MODEL_FRESHNESS_BATCH_H_
