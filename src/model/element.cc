#include "model/element.h"

#include "common/macros.h"

namespace freshen {

std::vector<double> ChangeRates(const ElementSet& elements) {
  std::vector<double> out;
  out.reserve(elements.size());
  for (const Element& e : elements) out.push_back(e.change_rate);
  return out;
}

std::vector<double> AccessProbs(const ElementSet& elements) {
  std::vector<double> out;
  out.reserve(elements.size());
  for (const Element& e : elements) out.push_back(e.access_prob);
  return out;
}

std::vector<double> Sizes(const ElementSet& elements) {
  std::vector<double> out;
  out.reserve(elements.size());
  for (const Element& e : elements) out.push_back(e.size);
  return out;
}

ElementSet MakeElementSet(const std::vector<double>& change_rates,
                          const std::vector<double>& access_probs,
                          const std::vector<double>& sizes) {
  FRESHEN_CHECK(change_rates.size() == access_probs.size());
  FRESHEN_CHECK(sizes.empty() || sizes.size() == change_rates.size());
  ElementSet elements(change_rates.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    elements[i].change_rate = change_rates[i];
    elements[i].access_prob = access_probs[i];
    elements[i].size = sizes.empty() ? 1.0 : sizes[i];
  }
  return elements;
}

}  // namespace freshen
