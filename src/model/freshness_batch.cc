#include "model/freshness_batch.h"

#include "common/simd.h"

namespace freshen {
namespace {

using simd::NativePack;
using simd::ScalarPack;

// All kernels are one template instantiated for NativePack (batch path) and
// ScalarPack (reference path); see common/simd.h for why that gives bitwise
// agreement between the two.
template <class P>
struct Kernels {
  using V = typename P::Vec;
  using M = typename P::Mask;

  static V C(double x) { return P::Broadcast(x); }

  /// g(r) = 1 - (1+r) e^{-r}, r >= 0. Series below r = 1e-2: the direct
  /// form cancels as r^2 against terms ~r (absolute error ~ulp(r), i.e.
  /// ~4e-13 relative at r = 1e-3), while the series through r^7/840 is
  /// ~4e-16 at the seam. Above 1e-2 the direct form is the accurate one.
  static V GofR(V r, V em /* = expm1(-r) */) {
    const V direct = P::Neg(P::Add(P::Fma(r, em, em), r));
    V ser = P::Fma(r, C(-1.0 / 840.0), C(1.0 / 144.0));
    ser = P::Fma(r, ser, C(-1.0 / 30.0));
    ser = P::Fma(r, ser, C(0.125));
    ser = P::Fma(r, ser, C(-1.0 / 3.0));
    ser = P::Fma(r, ser, C(0.5));
    ser = P::Mul(P::Mul(r, r), ser);
    return P::Select(P::Lt(r, C(1e-2)), ser, direct);
  }

  static V MarginalGainG(V r) {
    return GofR(r, simd::detail::Expm1T<P>(P::Neg(r)));
  }

  /// g^{-1}(y), y in (0, 1). Small-y series, analytic cold seed, then
  /// bracket-safeguarded third-order (Chebyshev) iterations with per-lane
  /// convergence freezing: a converged lane stops updating, so its result
  /// never depends on how long its vector-mates keep iterating.
  static V InverseG(V y, V seed) {
    // Series: r = s (1 + s/3 + 11 s^2/72 + 43 s^3/540) + O(s^5),
    // s = sqrt(2y). Exact to double for s < 1e-4 (y < 5e-9); also the cold
    // seed up to y = 1/2 (there ~1% off, two iterations from convergence).
    const V s = P::Sqrt(P::Add(y, y));
    const V r_series = P::Mul(
        s, P::Fma(s,
                  P::Fma(s, P::Fma(s, C(43.0 / 540.0), C(11.0 / 72.0)),
                         C(1.0 / 3.0)),
                  C(1.0)));
    const M series = P::Lt(s, C(1e-4));
    // Cold seed: the series for y < 1/2; for larger y invert the dominant
    // exponential: r ~ L + log(1+L) with L = -log(1-y).
    const V l = P::Neg(simd::detail::Log1pT<P>(P::Neg(y)));
    const V seed_big = P::Add(l, simd::detail::Log1pT<P>(l));
    V r0 = P::Select(P::Lt(y, C(0.5)), r_series, seed_big);
    // Caller seed wins when inside the safeguard bracket.
    const M seeded =
        P::MaskAnd(P::Gt(seed, C(0.0)), P::Lt(seed, C(745.0)));
    r0 = P::Select(seeded, seed, r0);
    r0 = P::Select(P::Lt(r0, C(1e-300)), C(1e-300), r0);
    r0 = P::Select(P::Gt(r0, C(745.0)), C(745.0), r0);

    V lo = C(0.0);
    V hi = C(745.0);  // g(745) == 1 to double precision.
    V r = r0;
    M active = P::MaskNot(series);
    for (int iter = 0; iter < 60 && P::AnyTrue(active); ++iter) {
      const V em = simd::detail::Expm1T<P>(P::Neg(r));
      const V gd = P::Sub(GofR(r, em), y);
      const M pos = P::Gt(gd, C(0.0));
      hi = P::Select(P::MaskAnd(pos, active), r, hi);
      lo = P::Select(P::MaskAnd(P::MaskNot(pos), active), r, lo);
      // Chebyshev step: u = (g-y)/g', correction 1 + u g''/(2g') with
      // g' = r e^{-r} = r (1+em), g''/g' = (1-r)/r.
      const V gp = P::Mul(r, P::Add(C(1.0), em));
      const V u = P::Div(gd, gp);
      const V q = P::Div(P::Sub(C(1.0), r), P::Add(r, r));
      V next = P::Sub(r, P::Mul(u, P::Fma(u, q, C(1.0))));
      // Outside the bracket (or NaN from a degenerate step): bisect.
      const M ok = P::MaskAnd(P::Gt(next, lo), P::Lt(next, hi));
      next = P::Select(ok, next, P::Mul(C(0.5), P::Add(lo, hi)));
      const M done =
          P::Le(P::Abs(P::Sub(next, r)), P::Mul(C(1e-15), next));
      r = P::Select(active, next, r);
      active = P::MaskAnd(active, P::MaskNot(done));
    }
    return P::Select(series, r_series, r);
  }

  /// h^{-1}(y), y > 0, h(r) = r^2/2 - g(r). Three regimes: series for
  /// y < 3.3e-10 (r < 1e-3), closed form sqrt(2(y+1)) for y >= 1000 (the
  /// e^{-r} residual is below the result's ulp there), iteration between.
  static V InverseH(V y, V seed) {
    const V r_big = P::Sqrt(P::Add(P::Add(y, y), C(2.0)));
    const M big = P::Ge(y, C(1000.0));
    // Series inversion of h ~ r^3/3: r = c (1 + c/8 + 13 c^2/960) with
    // c = (3y)^{1/3} = exp(log(3y)/3). LogPos, not log1p(3y-1): for tiny y
    // the -1/+1 round trip in the latter costs ~ulp(1)/(3y) relative.
    const V c3 = simd::detail::ExpT<P>(
        P::Mul(C(1.0 / 3.0), simd::detail::LogPosT<P>(P::Mul(C(3.0), y))));
    const V r_series = P::Mul(
        c3,
        P::Fma(c3, P::Fma(c3, C(13.0 / 960.0), C(0.125)), C(1.0)));
    const M series = P::Lt(y, C(3.3e-10));

    V r0 = P::Select(P::Lt(y, C(0.3)), r_series, r_big);
    const M seeded = P::MaskAnd(P::Gt(seed, C(0.0)), P::Lt(seed, C(50.0)));
    r0 = P::Select(seeded, seed, r0);
    r0 = P::Select(P::Lt(r0, C(1e-300)), C(1e-300), r0);
    r0 = P::Select(P::Gt(r0, C(50.0)), C(50.0), r0);

    V lo = C(0.0);
    V hi = C(50.0);  // h(50) > 1000: covers every iterating lane.
    V r = r0;
    M active = P::MaskAnd(P::MaskNot(series), P::MaskNot(big));
    for (int iter = 0; iter < 60 && P::AnyTrue(active); ++iter) {
      const V em = simd::detail::Expm1T<P>(P::Neg(r));
      V h = P::Sub(P::Mul(C(0.5), P::Mul(r, r)), GofR(r, em));
      // h = r^3/3 - r^4/8 + r^5/30 - r^6/144 + r^7/840 - r^8/5760 below
      // r = 2e-2: the direct r^2/2 - g(r) difference cancels to absolute
      // ~ulp(r^2) there (relative ~6e-10 at r = 1e-3), the series is
      // ~1.6e-12 at the seam and exact below r ~ 5e-3.
      V hs = P::Fma(r, C(-1.0 / 5760.0), C(1.0 / 840.0));
      hs = P::Fma(r, hs, C(-1.0 / 144.0));
      hs = P::Fma(r, hs, C(1.0 / 30.0));
      hs = P::Fma(r, hs, C(-0.125));
      hs = P::Fma(r, hs, C(1.0 / 3.0));
      hs = P::Mul(P::Mul(r, P::Mul(r, r)), hs);
      h = P::Select(P::Lt(r, C(2e-2)), hs, h);
      const V hd = P::Sub(h, y);
      const M pos = P::Gt(hd, C(0.0));
      hi = P::Select(P::MaskAnd(pos, active), r, hi);
      lo = P::Select(P::MaskAnd(P::MaskNot(pos), active), r, lo);
      // h' = r (1 - e^{-r}) = -r em; h'' = -em + r (1+em).
      const V hp = P::Mul(r, P::Neg(em));
      const V u = P::Div(hd, hp);
      const V hpp = P::Fma(r, P::Add(C(1.0), em), P::Neg(em));
      const V q = P::Div(hpp, P::Add(hp, hp));
      V next = P::Sub(r, P::Mul(u, P::Fma(u, q, C(1.0))));
      const M ok = P::MaskAnd(P::Gt(next, lo), P::Lt(next, hi));
      next = P::Select(ok, next, P::Mul(C(0.5), P::Add(lo, hi)));
      const M done =
          P::Le(P::Abs(P::Sub(next, r)), P::Mul(C(1e-15), next));
      r = P::Select(active, next, r);
      active = P::MaskAnd(active, P::MaskNot(done));
    }
    return P::Select(series, r_series, P::Select(big, r_big, r));
  }
};

/// Runs a (value, seed) -> value lane algorithm over arrays with a padded
/// tail. Pad values must be in the algorithm's domain; results for pad
/// lanes are discarded.
template <typename Fn>
void MapBatch2(Fn fn, const double* x, const double* seeds, double pad_x,
               double* out, size_t n) {
  using P = NativePack;
  constexpr size_t w = P::kWidth;
  const typename P::Vec no_seed = P::Broadcast(0.0);
  size_t i = 0;
  for (; i + w <= n; i += w) {
    const typename P::Vec s =
        seeds != nullptr ? P::Load(seeds + i) : no_seed;
    P::Store(out + i, fn(P::Load(x + i), s));
  }
  if (i < n) {
    double xbuf[w];
    double sbuf[w] = {0.0};
    for (size_t j = 0; j < w; ++j) xbuf[j] = pad_x;
    for (size_t j = i; j < n; ++j) {
      xbuf[j - i] = x[j];
      if (seeds != nullptr) sbuf[j - i] = seeds[j];
    }
    typename P::Vec v = fn(P::Load(xbuf), P::Load(sbuf));
    P::Store(xbuf, v);
    for (size_t j = i; j < n; ++j) out[j] = xbuf[j - i];
  }
}

}  // namespace

size_t BatchKernelLanes() { return simd::kLanes; }

const char* BatchKernelBackend() { return simd::BackendName(); }

void BatchMarginalGainG(const double* r, double* out, size_t n) {
  MapBatch2(
      [](NativePack::Vec v, NativePack::Vec) {
        return Kernels<NativePack>::MarginalGainG(v);
      },
      r, nullptr, /*pad_x=*/1.0, out, n);
}

void BatchInverseMarginalGainG(const double* y, const double* seeds,
                               double* out, size_t n) {
  MapBatch2(
      [](NativePack::Vec v, NativePack::Vec s) {
        return Kernels<NativePack>::InverseG(v, s);
      },
      y, seeds, /*pad_x=*/0.25, out, n);
}

void BatchInverseAgeMarginalKernelH(const double* y, const double* seeds,
                                    double* out, size_t n) {
  MapBatch2(
      [](NativePack::Vec v, NativePack::Vec s) {
        return Kernels<NativePack>::InverseH(v, s);
      },
      y, seeds, /*pad_x=*/0.25, out, n);
}

double RefMarginalGainG(double r) {
  return Kernels<ScalarPack>::MarginalGainG(r);
}

double RefInverseMarginalGainG(double y, double seed) {
  return Kernels<ScalarPack>::InverseG(y, seed);
}

double RefInverseAgeMarginalKernelH(double y, double seed) {
  return Kernels<ScalarPack>::InverseH(y, seed);
}

}  // namespace freshen
