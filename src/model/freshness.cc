#include "model/freshness.h"

#include <cmath>
#include <limits>

#include "common/macros.h"

namespace freshen {

double FixedOrderFreshness(double f, double lambda) {
  FRESHEN_DCHECK(f >= 0.0);
  FRESHEN_DCHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 1.0;  // Never updated: always fresh.
  if (f <= 0.0) return 0.0;       // Never synced: stale almost surely.
  const double r = lambda / f;
  // (1 - e^{-r}) / r, stable at tiny r via expm1.
  return -std::expm1(-r) / r;
}

double FixedOrderFreshnessDerivative(double f, double lambda) {
  FRESHEN_DCHECK(f >= 0.0);
  FRESHEN_DCHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 0.0;
  if (f <= 0.0) return 1.0 / lambda;  // Limit of g(r)/lambda as r -> inf.
  return MarginalGainG(lambda / f) / lambda;
}

double PoissonSyncFreshness(double f, double lambda) {
  FRESHEN_DCHECK(f >= 0.0);
  FRESHEN_DCHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 1.0;
  if (f <= 0.0) return 0.0;
  return f / (f + lambda);
}

double PolicyFreshness(SyncPolicy policy, double f, double lambda) {
  switch (policy) {
    case SyncPolicy::kFixedOrder:
      return FixedOrderFreshness(f, lambda);
    case SyncPolicy::kPoisson:
      return PoissonSyncFreshness(f, lambda);
  }
  return 0.0;
}

double MarginalGainG(double r) {
  FRESHEN_DCHECK(r >= 0.0);
  if (r < 1e-4) {
    // Series: g(r) = r^2/2 - r^3/3 + r^4/8 - r^5/30 + O(r^6). The direct
    // form cancels catastrophically here (both terms ~ r).
    return r * r *
           (0.5 + r * (-1.0 / 3.0 + r * (0.125 - r / 30.0)));
  }
  return -std::expm1(-r) - r * std::exp(-r);
}

double MarginalGainGPrime(double r) {
  FRESHEN_DCHECK(r >= 0.0);
  return r * std::exp(-r);
}

double InverseMarginalGainG(double y) { return InverseMarginalGainG(y, 0.0); }

double InverseMarginalGainG(double y, double guess) {
  FRESHEN_CHECK(y > 0.0 && y < 1.0);
  // Solve g(r) = y via the equivalent, well-conditioned equation
  //   h(r) = log(1 + r) - r - log(1 - y) = 0
  // (g(r) = 1 - (1+r) e^{-r}, so 1-y = (1+r) e^{-r}). h is strictly
  // decreasing with h'(r) = -r/(1+r), bounded away from 0 once r > 0.
  const double target = std::log1p(-y);  // log(1 - y), negative.
  // Initial guess: a caller-provided nearby root when valid, else the
  // small-y regime r ~ sqrt(2y) / large-y regime r ~ -log(1-y) + log(1+r),
  // iterated once.
  double r;
  if (guess > 0.0 && guess < 750.0 && std::isfinite(guess)) {
    r = guess;
  } else {
    r = y < 0.5 ? std::sqrt(2.0 * y) : -target + std::log1p(-target);
  }
  double lo = 0.0;
  double hi = 750.0;  // g(750) == 1 to double precision.
  for (int iter = 0; iter < 100; ++iter) {
    const double h = std::log1p(r) - r - target;
    if (h > 0.0) {
      lo = r;  // h decreasing: root is to the right.
    } else {
      hi = r;
    }
    const double hprime = -r / (1.0 + r);
    double next = (hprime != 0.0) ? r - h / hprime : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - r) <= 1e-14 * (1.0 + r)) {
      r = next;
      break;
    }
    r = next;
  }
  return r;
}

double FixedOrderAge(double f, double lambda) {
  FRESHEN_DCHECK(f >= 0.0);
  FRESHEN_DCHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 0.0;  // Never stale.
  if (f <= 0.0) return std::numeric_limits<double>::infinity();
  const double interval = 1.0 / f;
  const double x = lambda * interval;
  double a;  // A = interval * a(x).
  if (x < 0.01) {
    // a(x) = x/6 - x^2/24 + x^3/120 - x^4/720 + x^5/5040 - x^6/40320.
    a = x * (1.0 / 6.0 +
             x * (-1.0 / 24.0 +
                  x * (1.0 / 120.0 +
                       x * (-1.0 / 720.0 +
                            x * (1.0 / 5040.0 - x / 40320.0)))));
  } else {
    // a(x) = (x^2/2 - x + 1 - e^{-x}) / x^2, with the numerator written so
    // the leading cancellations (terms ~x collapsing to ~x^3/6) cost at
    // most ~eps/x^2 relative error — negligible for x >= 0.01.
    a = (0.5 * x * x - x - std::expm1(-x)) / (x * x);
  }
  return interval * a;
}

double AgeMarginalKernelH(double r) {
  FRESHEN_DCHECK(r >= 0.0);
  if (r < 1e-3) {
    // Series: h(r) = r^3/3 - r^4/8 + r^5/30 - r^6/144 + O(r^7). The direct
    // form cancels to zero precision here (h ~ r^3 against terms ~ 1).
    return r * r * r *
           (1.0 / 3.0 + r * (-0.125 + r * (1.0 / 30.0 - r / 144.0)));
  }
  return 0.5 * r * r - MarginalGainG(r);
}

double AgeMarginalKernelHPrime(double r) {
  FRESHEN_DCHECK(r >= 0.0);
  return r * (-std::expm1(-r));
}

double InverseAgeMarginalKernelH(double y) {
  return InverseAgeMarginalKernelH(y, 0.0);
}

double InverseAgeMarginalKernelH(double y, double guess) {
  FRESHEN_CHECK(y > 0.0);
  // Initial guess: a caller-provided nearby root when valid, else from the
  // asymptotics h ~ r^3/3 for small y and h ~ r^2/2 - 1 for large y. The
  // guess must sit inside the safeguard bracket below — past 1e160,
  // h(r) = r^2/2 - ... overflows and the iteration would chase inf - nan.
  // (NaN fails the comparison too.)
  double r;
  if (guess > 0.0 && guess < 1e160) {
    r = guess;
  } else {
    r = y < 0.3 ? std::cbrt(3.0 * y) : std::sqrt(2.0 * (y + 1.0));
  }
  double lo = 0.0;
  double hi = 1e160;  // h(1e160) overflows toward inf; bisection shrinks it.
  for (int iter = 0; iter < 200; ++iter) {
    const double value = AgeMarginalKernelH(r) - y;
    if (value > 0.0) {
      hi = r;
    } else {
      lo = r;
    }
    const double slope = AgeMarginalKernelHPrime(r);
    double next = slope > 0.0 ? r - value / slope : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) {
      next = hi < 1e159 ? 0.5 * (lo + hi) : 2.0 * r;
    }
    if (std::fabs(next - r) <= 1e-14 * (1.0 + r)) {
      r = next;
      break;
    }
    r = next;
  }
  return r;
}

}  // namespace freshen
