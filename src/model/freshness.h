// Closed-form time-averaged freshness of a Poisson-updated element under the
// synchronization policies of Cho & Garcia-Molina (SIGMOD 2000), which the
// paper builds on. The Fixed Order policy is the one every freshen scheduler
// uses; the others exist for the policy ablation (bench_ablation_policy).
//
// Let lambda be the element's Poisson update rate and f its synchronization
// frequency (both per unit time), and r = lambda / f.
//
//   Fixed Order  : F(f, lambda) = (1 - e^{-r}) / r       (regular interval 1/f)
//   Poisson sync : F(f, lambda) = f / (f + lambda)       (memoryless intervals)
//
// F is strictly increasing and strictly concave in f, with
//   dF/df = g(r) / lambda,   g(r) = 1 - e^{-r} - r e^{-r},
// g strictly increasing from g(0)=0 to g(inf)=1. The optimizer inverts g.
#ifndef FRESHEN_MODEL_FRESHNESS_H_
#define FRESHEN_MODEL_FRESHNESS_H_

namespace freshen {

/// Synchronization-order policies with known closed forms.
enum class SyncPolicy {
  /// All elements re-synced at fixed, regular intervals (paper default; shown
  /// best in [5]).
  kFixedOrder,
  /// Sync instants form a Poisson process of rate f (memoryless).
  kPoisson,
};

/// Time-averaged freshness of one element under Fixed Order sync.
/// f >= 0, lambda >= 0. F(0, lambda) = 0 for lambda > 0; F(f, 0) = 1.
double FixedOrderFreshness(double f, double lambda);

/// Partial derivative dF/df of FixedOrderFreshness w.r.t. f. Marginal value
/// of one extra unit of sync frequency. At f -> 0+ this tends to 1/lambda
/// (finite!), which is why optimal schedules can starve elements entirely.
double FixedOrderFreshnessDerivative(double f, double lambda);

/// Time-averaged freshness under Poisson-scheduled sync: f / (f + lambda).
double PoissonSyncFreshness(double f, double lambda);

/// Dispatches on policy.
double PolicyFreshness(SyncPolicy policy, double f, double lambda);

/// g(r) = 1 - e^{-r} - r e^{-r}: the marginal-gain kernel. Strictly
/// increasing on [0, inf), range [0, 1). Evaluated stably for tiny r.
double MarginalGainG(double r);

/// Derivative g'(r) = r e^{-r}.
double MarginalGainGPrime(double r);

/// Inverse of g on (0, 1): returns r with g(r) = y. Newton iteration with a
/// bisection safeguard; |g(result) - y| <= 1e-12. Requires 0 < y < 1.
double InverseMarginalGainG(double y);

/// As above, but the Newton iteration is seeded from `guess` — typically the
/// root computed for a nearby y (the water-filling solvers re-invert per
/// element ~50 times along a collapsing multiplier bracket, so the previous
/// root is within a few percent and convergence takes 1-2 steps instead of
/// 5-8). A guess <= 0, non-finite, or outside the safeguard bracket falls
/// back to the cold-start seed; the result contract is unchanged.
double InverseMarginalGainG(double y, double guess);

/// Time-averaged *age* of an element under Fixed Order sync with interval
/// I = 1/f (an extension metric; the paper's conclusion points at richer
/// quality measures). Age at time t is t - t_first_update_since_sync when the
/// copy is stale, else 0. Closed form:
///   A(f, lambda) = I/2 - 1/lambda + (1 - e^{-lambda I}) / (lambda^2 I).
double FixedOrderAge(double f, double lambda);

/// The age-marginal kernel h(r) = r^2/2 - g(r) = r^2/2 - 1 + (1+r) e^{-r}:
/// the marginal age reduction per unit of frequency is
///   -dA/df = h(lambda/f) / lambda^2.
/// h is strictly increasing from h(0) = 0 and UNBOUNDED (~ r^2/2 - 1), which
/// is why age-optimal schedules never starve an element: the marginal value
/// of the first sync of a never-synced element is infinite.
double AgeMarginalKernelH(double r);

/// Derivative h'(r) = r (1 - e^{-r}).
double AgeMarginalKernelHPrime(double r);

/// Inverse of h on (0, inf): returns r with h(r) = y. Requires y > 0.
double InverseAgeMarginalKernelH(double y);

/// As InverseAgeMarginalKernelH, seeded from `guess` (see the warm-started
/// InverseMarginalGainG overload). Invalid guesses fall back to cold start.
double InverseAgeMarginalKernelH(double y, double guess);

}  // namespace freshen

#endif  // FRESHEN_MODEL_FRESHNESS_H_
