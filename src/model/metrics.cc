#include "model/metrics.h"

#include <cmath>

#include "common/macros.h"
#include "stats/descriptive.h"

namespace freshen {

double PerceivedFreshness(const ElementSet& elements,
                          const std::vector<double>& frequencies,
                          SyncPolicy policy) {
  FRESHEN_CHECK(elements.size() == frequencies.size());
  KahanSum acc;
  for (size_t i = 0; i < elements.size(); ++i) {
    acc.Add(elements[i].access_prob *
            PolicyFreshness(policy, frequencies[i], elements[i].change_rate));
  }
  return acc.Total();
}

double GeneralFreshness(const ElementSet& elements,
                        const std::vector<double>& frequencies,
                        SyncPolicy policy) {
  FRESHEN_CHECK(elements.size() == frequencies.size());
  if (elements.empty()) return 0.0;
  KahanSum acc;
  for (size_t i = 0; i < elements.size(); ++i) {
    acc.Add(PolicyFreshness(policy, frequencies[i], elements[i].change_rate));
  }
  return acc.Total() / static_cast<double>(elements.size());
}

double PerceivedAge(const ElementSet& elements,
                    const std::vector<double>& frequencies) {
  FRESHEN_CHECK(elements.size() == frequencies.size());
  KahanSum acc;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (elements[i].access_prob <= 0.0) continue;
    const double age = FixedOrderAge(frequencies[i], elements[i].change_rate);
    if (std::isinf(age)) {
      // An accessed element that is never synced: its age grows without
      // bound, so the schedule's perceived age is infinite. (Compensated
      // summation would turn inf into NaN.)
      return age;
    }
    acc.Add(elements[i].access_prob * age);
  }
  return acc.Total();
}

double BandwidthUsed(const ElementSet& elements,
                     const std::vector<double>& frequencies) {
  FRESHEN_CHECK(elements.size() == frequencies.size());
  KahanSum acc;
  for (size_t i = 0; i < elements.size(); ++i) {
    acc.Add(elements[i].size * frequencies[i]);
  }
  return acc.Total();
}

}  // namespace freshen
