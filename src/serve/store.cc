#include "serve/store.h"

#include <utility>

#include "common/macros.h"

namespace freshen {
namespace serve {

SnapshotRef& SnapshotRef::operator=(SnapshotRef&& other) noexcept {
  if (this != &other) {
    if (store_ != nullptr) store_->Release();
    store_ = other.store_;
    snapshot_ = other.snapshot_;
    other.store_ = nullptr;
    other.snapshot_ = nullptr;
  }
  return *this;
}

SnapshotRef::~SnapshotRef() {
  if (store_ != nullptr) store_->Release();
}

SnapshotStore::SnapshotStore(obs::MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Global()) {
  publications_counter_ =
      registry_->GetCounter("freshen_serve_publications_total");
  reclaimed_counter_ =
      registry_->GetCounter("freshen_serve_snapshots_reclaimed_total");
  acquires_counter_ = registry_->GetCounter("freshen_serve_acquires_total");
  epoch_gauge_ = registry_->GetGauge("freshen_serve_epoch");
  pinned_gauge_ = registry_->GetGauge("freshen_serve_pinned_readers");
  retired_gauge_ = registry_->GetGauge("freshen_serve_retired_pending");
}

SnapshotStore::~SnapshotStore() {
  Drain();
  // current_owner_ releases the final snapshot.
}

SnapshotRef SnapshotStore::Acquire() {
  // Pin first, then load: the pin protocol guarantees that after Pin()
  // returns epoch e, the current pointer is the epoch-e snapshot or newer
  // (the publisher stores the pointer before advancing the epoch), and the
  // domain keeps every snapshot with epoch >= e alive until Unpin.
  domain_.Pin();
  const ServeSnapshot* snapshot =
      current_.load(std::memory_order_acquire);
  if (snapshot == nullptr) {
    domain_.Unpin();
    return SnapshotRef();
  }
  acquires_counter_->Increment();
  return SnapshotRef(this, snapshot);
}

void SnapshotStore::Release() { domain_.Unpin(); }

uint64_t SnapshotStore::Publish(
    std::shared_ptr<const ServeSnapshot> snapshot) {
  FRESHEN_CHECK(snapshot != nullptr);
  const ServeSnapshot* raw = snapshot.get();
  const ServeSnapshot* prev = current_.load(std::memory_order_relaxed);
  std::shared_ptr<const ServeSnapshot> prev_owner = std::move(current_owner_);
  current_owner_ = std::move(snapshot);

  // Pointer first, epoch second — see the class comment for why this order
  // is what makes a pinned epoch protect the pointer a reader then loads.
  current_.store(raw, std::memory_order_release);
  const uint64_t epoch = domain_.Advance();
  FRESHEN_CHECK(raw->epoch() == epoch);

  if (prev != nullptr) {
    // The previous snapshot was reachable up to (and including) the moment
    // epoch `epoch` opened; readers pinned at <= prev->epoch() may hold it.
    domain_.Retire(prev->epoch(),
                   [owner = std::move(prev_owner)]() mutable {
                     owner.reset();
                   });
    retired_total_.fetch_add(1, std::memory_order_relaxed);
  }
  const size_t reclaimed = domain_.TryReclaim();
  reclaimed_total_.fetch_add(reclaimed, std::memory_order_relaxed);

  publications_counter_->Increment();
  reclaimed_counter_->Add(static_cast<double>(reclaimed));
  epoch_gauge_->Set(static_cast<double>(epoch));
  pinned_gauge_->Set(static_cast<double>(domain_.PinnedReaders()));
  retired_gauge_->Set(static_cast<double>(domain_.RetiredCount()));
  return epoch;
}

void SnapshotStore::Drain() {
  const size_t reclaimed = domain_.DrainAll();
  reclaimed_total_.fetch_add(reclaimed, std::memory_order_relaxed);
  reclaimed_counter_->Add(static_cast<double>(reclaimed));
  retired_gauge_->Set(static_cast<double>(domain_.RetiredCount()));
}

StoreStats SnapshotStore::stats() const {
  StoreStats stats;
  stats.publications = domain_.CurrentEpoch();
  stats.snapshots_retired = retired_total_.load(std::memory_order_relaxed);
  stats.snapshots_reclaimed =
      reclaimed_total_.load(std::memory_order_relaxed);
  stats.current_epoch = domain_.CurrentEpoch();
  // Derived rather than read from the publisher-owned retire list, so
  // stats() is safe from any thread.
  stats.retired_pending = static_cast<size_t>(stats.snapshots_retired -
                                              stats.snapshots_reclaimed);
  return stats;
}

}  // namespace serve
}  // namespace freshen
