#include "serve/slowlog.h"

#include <algorithm>

namespace freshen {
namespace serve {
namespace {

constexpr size_t kMaxRequestBytes = 128;

}  // namespace

SlowQueryLog::SlowQueryLog(Options options) : options_(options) {
  options_.capacity = std::max<size_t>(1, options_.capacity);
  if (options_.threshold_seconds < 0.0) options_.threshold_seconds = 0.0;
  ring_.reserve(options_.capacity);
}

bool SlowQueryLog::Record(std::string_view request, std::string_view command,
                          double seconds, double recorded_at) {
  if (seconds < options_.threshold_seconds) return false;
  SlowQueryEntry entry;
  entry.request = std::string(request.substr(0, kMaxRequestBytes));
  entry.command = std::string(command);
  entry.seconds = seconds;
  entry.recorded_at = recorded_at;
  std::lock_guard<std::mutex> lock(mu_);
  entry.id = ++recorded_;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[next_] = std::move(entry);
    next_ = (next_ + 1) % options_.capacity;
  }
  return true;
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryEntry> entries;
  entries.reserve(ring_.size());
  // ring_[next_ - 1] is newest once full; before that the tail is newest.
  for (size_t i = 0; i < ring_.size(); ++i) {
    const size_t index = (next_ + ring_.size() - 1 - i) % ring_.size();
    entries.push_back(ring_[index]);
  }
  return entries;
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

}  // namespace serve
}  // namespace freshen
