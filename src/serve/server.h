// LineServer: the freshend transport — an AF_UNIX stream socket speaking the
// newline protocol from serve/protocol.h.
//
// Threading model:
//   * One accept thread blocks in accept() and hands each connection to a
//     ThreadPool via TrySubmit. A full pool queue refuses the connection
//     (the socket is closed immediately and freshen_serve_rejected_total
//     increments) — the serving path never blocks on a slow client backlog.
//   * Each connection task reads lines, answers via HandleRequestLine
//     (which pins a snapshot per query; see serve/store.h), and writes one
//     JSON line per request until QUIT, EOF, or a read/write error.
//   * Stop() is the graceful drain used by freshend's SIGTERM handler:
//     shutdown(2) + close the listener to pop the accept thread out of
//     accept(), join it, then drain the pool (in-flight connections finish
//     their current line; the eof/error path ends them promptly because
//     Stop also shuts down accepted sockets' read sides).
#ifndef FRESHEN_SERVE_SERVER_H_
#define FRESHEN_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/daemon.h"

namespace freshen {
namespace serve {

/// Point-in-time server counters.
struct ServerStats {
  /// Connections accepted and handed to the pool.
  uint64_t accepted = 0;
  /// Connections refused because the handler pool queue was full.
  uint64_t rejected = 0;
  /// Request lines answered.
  uint64_t requests = 0;
  /// Connections dropped for exceeding the per-connection buffer cap
  /// (abusive clients sending unbounded unterminated data).
  uint64_t overflow = 0;
};

/// A newline-protocol server over a local (AF_UNIX) socket.
class LineServer {
 public:
  struct Options {
    /// Filesystem path of the UNIX socket. A stale file at this path is
    /// unlinked before bind (freshend owns its socket path).
    std::string socket_path;
    /// Connection-handler threads.
    size_t num_threads = 4;
    /// Pending-connection capacity; beyond this, connections are refused.
    size_t queue_capacity = 64;
    /// listen(2) backlog.
    int listen_backlog = 16;
    /// Registry for freshen_serve_connections_total /
    /// freshen_serve_rejected_total / freshen_serve_requests_total.
    obs::MetricsRegistry* registry = nullptr;
  };

  /// Binds, listens, and starts the accept thread. The daemon must outlive
  /// the server.
  static Result<std::unique_ptr<LineServer>> Start(
      const FreshendDaemon* daemon, Options options);

  /// Stops accepting, unblocks in-flight readers, drains handlers, and
  /// removes the socket file. Idempotent.
  void Stop();

  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// True until Stop().
  bool running() const { return !stopped_.load(std::memory_order_acquire); }

  /// The bound socket path.
  const std::string& socket_path() const { return options_.socket_path; }

  ServerStats stats() const;

 private:
  LineServer(const FreshendDaemon* daemon, Options options, int listen_fd);

  void AcceptLoop();
  void ServeConnection(int fd);
  // WATCH streaming: writes FormatWatchSample lines every `interval`
  // seconds until `count` samples (0 = unbounded), any readable client
  // data, disconnect, or Stop(). Returns false when the connection died
  // (write failure / hang-up) and the caller should close it.
  bool RunWatch(int fd, double interval_seconds, uint64_t count);
  // Tracks live connection fds so Stop() can shut down their read sides.
  void TrackFd(int fd);
  void UntrackFd(int fd);

  const FreshendDaemon* daemon_;
  Options options_;
  int listen_fd_;
  std::atomic<bool> stopped_{false};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex fds_mu_;
  std::vector<int> live_fds_;

  obs::MetricsRegistry* registry_;
  obs::Counter* connections_counter_;
  obs::Counter* rejected_counter_;
  obs::Counter* requests_counter_;
  obs::Counter* overflow_counter_;
};

}  // namespace serve
}  // namespace freshen

#endif  // FRESHEN_SERVE_SERVER_H_
