#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "serve/protocol.h"

namespace freshen {
namespace serve {
namespace {

// Writes the whole buffer, riding out EINTR and short writes. MSG_NOSIGNAL:
// a client that vanishes mid-response (routine for WATCH streams) must
// surface as EPIPE here, not as a process-killing SIGPIPE.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<LineServer>> LineServer::Start(
    const FreshendDaemon* daemon, Options options) {
  if (daemon == nullptr) {
    return Status::InvalidArgument("daemon must not be null");
  }
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("socket_path must not be empty");
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket_path too long (%zu bytes; max %zu)",
                  options.socket_path.size(), sizeof(addr.sun_path) - 1));
  }
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  ::unlink(options.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat("bind(%s): %s",
                                      options.socket_path.c_str(),
                                      std::strerror(err)));
  }
  if (::listen(fd, options.listen_backlog) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(options.socket_path.c_str());
    return Status::Internal(
        StrFormat("listen(): %s", std::strerror(err)));
  }
  return std::unique_ptr<LineServer>(
      new LineServer(daemon, std::move(options), fd));
}

LineServer::LineServer(const FreshendDaemon* daemon, Options options,
                       int listen_fd)
    : daemon_(daemon),
      options_(std::move(options)),
      listen_fd_(listen_fd),
      registry_(options_.registry != nullptr
                    ? options_.registry
                    : &obs::MetricsRegistry::Global()) {
  connections_counter_ =
      registry_->GetCounter("freshen_serve_connections_total");
  rejected_counter_ = registry_->GetCounter("freshen_serve_rejected_total");
  requests_counter_ = registry_->GetCounter("freshen_serve_requests_total");
  overflow_counter_ = registry_->GetCounter("freshen_serve_overflow_total");
  ThreadPool::Options pool_options;
  pool_options.num_threads = std::max<size_t>(1, options_.num_threads);
  pool_options.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  pool_ = std::make_unique<ThreadPool>(pool_options);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

LineServer::~LineServer() { Stop(); }

void LineServer::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  // Order matters: (1) poke the accept thread out of accept(2) and join it
  // so no new connections arrive; (2) shut down live connections' read
  // sides so blocked read(2)s return 0 and handlers finish; (3) destroy the
  // pool, which drains queued connections (their handlers see stopped_ and
  // close immediately) and joins the workers.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(fds_mu_);
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RD);
  }
  pool_.reset();
  ::unlink(options_.socket_path.c_str());
}

void LineServer::AcceptLoop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      // Stop() closed the listener (EBADF/EINVAL) or the socket died.
      return;
    }
    if (stopped_.load(std::memory_order_acquire)) {
      ::close(conn);
      return;
    }
    const Status submitted = pool_->TrySubmit([this, conn] {
      ServeConnection(conn);
    });
    if (!submitted.ok()) {
      // Backpressure: refuse rather than queue unboundedly. The client sees
      // an immediate close and can retry.
      rejected_counter_->Increment();
      ::close(conn);
      continue;
    }
    connections_counter_->Increment();
  }
}

void LineServer::TrackFd(int fd) {
  std::lock_guard<std::mutex> lock(fds_mu_);
  live_fds_.push_back(fd);
}

void LineServer::UntrackFd(int fd) {
  std::lock_guard<std::mutex> lock(fds_mu_);
  live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                  live_fds_.end());
}

void LineServer::ServeConnection(int fd) {
  if (stopped_.load(std::memory_order_acquire)) {
    ::close(fd);
    return;
  }
  TrackFd(fd);
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error (including Stop's SHUT_RD).
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > 1 << 16) {
      overflow_counter_->Increment();  // Abusive client; drop it.
      break;
    }
    size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      const ProtocolResponse response = HandleRequestLine(
          *daemon_, std::string_view(buffer.data(), newline));
      buffer.erase(0, newline + 1);
      requests_counter_->Increment();
      std::string out = response.line;
      out.push_back('\n');
      if (!WriteAll(fd, out.data(), out.size())) open = false;
      if (response.close) open = false;
      if (open && response.watch_interval_seconds > 0.0) {
        // Streaming mode: the ack is written, now pace samples until the
        // client sends anything, disconnects, the count is reached, or
        // the server stops. Leftover pipelined bytes in `buffer` are
        // processed after the watch ends.
        open = RunWatch(fd, response.watch_interval_seconds,
                        response.watch_count);
      }
    }
  }
  UntrackFd(fd);
  ::close(fd);
}

bool LineServer::RunWatch(int fd, double interval_seconds, uint64_t count) {
  const int timeout_ms =
      std::max(1, static_cast<int>(interval_seconds * 1000.0));
  uint64_t seq = 0;
  bool client_ended = false;
  while (!stopped_.load(std::memory_order_acquire) &&
         (count == 0 || seq < count)) {
    // Sleep one interval, but wake immediately on client input / EOF.
    // Stop() shuts down the read side of live fds, which also lands here
    // as a readable EOF — watches never outlive a graceful drain.
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready > 0) {
      // Any input (or hang-up) ends the watch; the caller's read loop
      // picks the bytes (or the EOF) up next.
      client_ended = true;
      break;
    }
    std::string sample = FormatWatchSample(*daemon_, ++seq);
    sample.push_back('\n');
    if (!WriteAll(fd, sample.data(), sample.size())) return false;
  }
  std::string end = StrFormat(
      "{\"ok\":true,\"cmd\":\"watch_end\",\"samples\":%llu,"
      "\"reason\":\"%s\"}",
      static_cast<unsigned long long>(seq),
      client_ended ? "client"
                   : (stopped_.load(std::memory_order_acquire) ? "stopped"
                                                               : "count"));
  end.push_back('\n');
  return WriteAll(fd, end.data(), end.size());
}

ServerStats LineServer::stats() const {
  ServerStats stats;
  stats.accepted = static_cast<uint64_t>(connections_counter_->value());
  stats.rejected = static_cast<uint64_t>(rejected_counter_->value());
  stats.requests = static_cast<uint64_t>(requests_counter_->value());
  stats.overflow = static_cast<uint64_t>(overflow_counter_->value());
  return stats;
}

}  // namespace serve
}  // namespace freshen
