// FreshendDaemon — the resident serving process: hosts an OnlineFreshenLoop
// on a background thread and answers concurrent freshness queries from a
// snapshot-isolated view of its state.
//
// The split:
//   * The loop thread runs periods continuously (optionally paced to wall
//     time): syncs fire (optionally through a fault-injecting
//     sync::SyncExecutor), accesses are served, the controller replans.
//     After every period the loop's on_period_end hook publishes a new
//     immutable ServeSnapshot into the SnapshotStore — deep-copying only
//     the shards whose elements synced (or every shard after a replan).
//   * Query threads call IsFresh / ExpectedAge / GetPlan / Stats at any
//     time. Each query pins the current snapshot (lock-free; see
//     serve/store.h), computes from immutable columns, and unpins. Queries
//     never block the loop and the loop never blocks queries.
//
// Query semantics (documented per method): answers are computed from the
// controller's *believed* change rates against the snapshot's publication
// time — the daemon serves what the system knows, not ground truth it
// could not have in production.
#ifndef FRESHEN_SERVE_DAEMON_H_
#define FRESHEN_SERVE_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "mirror/online_loop.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/slowlog.h"
#include "serve/snapshot.h"
#include "serve/store.h"

namespace freshen {
namespace serve {

/// IsFresh answer: the probability the local copy equals the source at the
/// snapshot's publication instant, under the believed Poisson change rate.
struct FreshnessVerdict {
  /// Epoch of the snapshot that answered.
  uint64_t epoch = 0;
  /// P(no source update since the last sync) = exp(-lambda * elapsed).
  double fresh_probability = 1.0;
  /// fresh_probability >= Options::freshness_threshold.
  bool fresh = true;
  /// Periods since the element's last applied sync at publication time.
  double elapsed = 0.0;
};

/// ExpectedAge answer: closed-form expected age of the copy at publication
/// time: elapsed - (1 - exp(-lambda*elapsed)) / lambda (0 when lambda = 0).
struct AgeEstimate {
  uint64_t epoch = 0;
  double expected_age = 0.0;
  double elapsed = 0.0;
};

/// GetPlan answer: the element's slice of the current plan.
struct PlanEntry {
  uint64_t epoch = 0;
  /// Planned syncs per period (0 = starved by the planner).
  double frequency = 0.0;
  /// 1 / frequency (infinity when starved).
  double interval = 0.0;
  /// frequency * size: this element's bandwidth share per period.
  double bandwidth_share = 0.0;
};

/// Stats() answer: one coherent sample of the serving side.
struct DaemonStats {
  /// Stats frozen into the currently pinned snapshot.
  SnapshotStats snapshot;
  /// Store-level publication/reclamation counters.
  StoreStats store;
  /// Periods the loop has completed.
  uint64_t periods = 0;
  /// Queries answered since start (all kinds).
  uint64_t queries = 0;
  /// Readers pinned at sampling time.
  size_t pinned_readers = 0;
  /// True while the loop thread is running.
  bool running = false;
};

/// The resident daemon. Create -> Start -> queries from any thread ->
/// Stop. All query methods are safe to call from any number of threads
/// concurrently with the running loop.
class FreshendDaemon {
 public:
  struct Options {
    /// Online-loop configuration (controller cadence, executor, seed...).
    /// Its on_period_end hook is owned by the daemon and must be unset.
    OnlineFreshenLoop::Options loop;
    /// IsFresh verdict threshold on P(fresh).
    double freshness_threshold = 0.5;
    /// Wall-clock pacing: seconds per loop period (0 = run flat out).
    double period_seconds = 0.0;
    /// Stop after this many periods (0 = run until Stop()).
    uint64_t max_periods = 0;
    /// Registry for freshen_serve_* metrics; nullptr = process-wide. Also
    /// used for the loop unless loop.registry names its own.
    obs::MetricsRegistry* registry = nullptr;
    /// Freshness SLO monitoring (the SLO/HEALTH/WATCH telemetry source).
    /// The daemon owns the monitor and wires it into the loop; loop.slo
    /// must be unset. slo.registry defaults to the daemon's registry.
    bool enable_slo = true;
    obs::SloMonitor::Options slo;
    /// Estimator drift detection. The daemon owns the detector and wires
    /// it into the loop; loop.drift must be unset. drift.num_elements is
    /// filled from the catalog; drift.registry defaults to the daemon's.
    bool enable_drift = true;
    obs::DriftDetector::Options drift;
    /// When true, sustained drift forces an early replan (see
    /// OnlineFreshenLoop::Options::drift_replan). Off by default.
    bool drift_replan = false;
    /// Slow-query ring configuration (SLOWLOG).
    SlowQueryLog::Options slowlog;
  };

  /// Builds the loop, publishes the initial snapshot (epoch 1, from the
  /// controller's cold-start plan), and returns a stopped daemon. `truth`
  /// is the ground-truth catalog the loop simulates against.
  static Result<std::unique_ptr<FreshendDaemon>> Create(ElementSet truth,
                                                        double bandwidth,
                                                        Options options);

  /// Stops (if running) and drains.
  ~FreshendDaemon();

  FreshendDaemon(const FreshendDaemon&) = delete;
  FreshendDaemon& operator=(const FreshendDaemon&) = delete;

  /// Starts the loop thread. Error if already running.
  Status Start();

  /// Graceful drain: the loop finishes its current period, publishes its
  /// final snapshot, and the thread joins. Queries keep working after Stop
  /// (they serve the final snapshot). Idempotent.
  void Stop();

  /// True while the loop thread runs periods.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Periods completed so far.
  uint64_t PeriodsRun() const {
    return periods_.load(std::memory_order_relaxed);
  }

  // ---- Query API (any thread) -------------------------------------------

  /// Is element `id`'s copy fresh (probably)? OutOfRange for bad ids.
  Result<FreshnessVerdict> IsFresh(size_t id) const;

  /// Expected copy age at the snapshot's publication time.
  Result<AgeEstimate> ExpectedAge(size_t id) const;

  /// The element's slice of the current plan.
  Result<PlanEntry> GetPlan(size_t id) const;

  /// One coherent stats sample.
  DaemonStats Stats() const;

  /// Pins and returns the current snapshot — the raw primitive behind the
  /// typed queries, used by torture tests and the serving bench to check
  /// consistency from the reader side.
  SnapshotRef AcquireSnapshot() const { return store_.Acquire(); }

  /// The number of catalog elements.
  size_t size() const { return num_elements_; }

  /// The hosted loop (loop-thread state; inspect only while stopped).
  const OnlineFreshenLoop& loop() const { return *loop_; }

  // ---- Telemetry plane (any thread) -------------------------------------

  /// The SLO monitor (nullptr when Options::enable_slo was false). Its
  /// Report()/state() are safe to read while the loop runs.
  const obs::SloMonitor* slo() const { return slo_.get(); }

  /// The drift detector (nullptr when Options::enable_drift was false).
  const obs::DriftDetector* drift() const { return drift_.get(); }

  /// The slow-query ring. Never null; the protocol layer records into it.
  SlowQueryLog* slow_log() const { return slow_log_.get(); }

  /// The registry this daemon (and its loop/server) reports into.
  obs::MetricsRegistry& registry() const { return *registry_; }

  /// Seconds since Create(). Also published as the freshen_uptime_seconds
  /// gauge on every Stats() sample.
  double UptimeSeconds() const { return uptime_timer_.ElapsedSeconds(); }

 private:
  FreshendDaemon(Options options, size_t num_elements);

  // Loop-thread body and the per-period publication hook.
  void LoopMain();
  void PublishBoundary(bool replanned, const std::vector<uint32_t>& synced);

  Options options_;
  size_t num_elements_ = 0;
  std::unique_ptr<OnlineFreshenLoop> loop_;
  SnapshotBuilder builder_;
  mutable SnapshotStore store_;

  // Publisher-side column scratch (loop thread only after Create).
  std::vector<double> frequency_;
  std::vector<double> change_rate_;
  std::vector<double> access_prob_;
  std::vector<double> size_;
  std::vector<double> last_sync_;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> periods_{0};
  std::mutex pacing_mu_;
  std::condition_variable pacing_cv_;

  // Telemetry plane: SLO monitor + drift detector owned here, fed by the
  // loop thread, read by admin-command handler threads.
  std::unique_ptr<obs::SloMonitor> slo_;
  std::unique_ptr<obs::DriftDetector> drift_;
  // mutable-by-const-accessor: handler threads record through slow_log().
  std::unique_ptr<SlowQueryLog> slow_log_;
  WallTimer uptime_timer_;

  obs::MetricsRegistry* registry_;
  obs::Gauge* uptime_gauge_;
  obs::Counter* fresh_queries_counter_;
  obs::Counter* age_queries_counter_;
  obs::Counter* plan_queries_counter_;
  obs::Counter* stats_queries_counter_;
  obs::Counter* full_publish_counter_;
  obs::Counter* delta_publish_counter_;
  obs::Histogram* publish_seconds_;

  // Builder state note: set when the next publication must rebuild all
  // shards (initial publish and replans).
  bool catalog_dirty_ = true;
};

}  // namespace serve
}  // namespace freshen

#endif  // FRESHEN_SERVE_DAEMON_H_
