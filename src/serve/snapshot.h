// Immutable, sharded serving state for the freshend daemon.
//
// A ServeSnapshot is what a concurrent query reads: the controller's current
// plan, the mirror's last-sync times, and the controller's believed catalog,
// frozen at one publication instant. Snapshots are immutable after
// publication — readers never see a value change under them — and sharded
// along the same fixed par::ShardPlan the compute spine uses, so publishing
// a new snapshot after a period only deep-copies the shards whose elements
// actually synced or whose frequencies changed: untouched shards are shared
// by pointer between consecutive snapshots (persistent-data-structure
// style), making publication O(changed shards), not O(N).
//
// Consistency is checkable from the reader side: every shard block carries
// an order-sensitive digest of its payload, and the snapshot records the
// combined digest over all shards at publication time. A reader that ever
// observed a torn snapshot (shards from two different publications) would
// recompute a different combination — the torture test and the serving
// bench both recompute and compare on every sampled query.
#ifndef FRESHEN_SERVE_SNAPSHOT_H_
#define FRESHEN_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "model/element.h"

namespace freshen {
namespace serve {

/// One contiguous shard of serving state: parallel columns over the
/// elements in [shard.begin, shard.end). Immutable after construction.
struct ShardBlock {
  /// Index range this block covers (mirrors the snapshot's shard plan).
  size_t begin = 0;
  size_t end = 0;
  /// Publication sequence that built this block (for debugging/attribution;
  /// an unchanged block is shared across many snapshots).
  uint64_t built_seq = 0;
  /// Planned sync frequency per element (per period).
  std::vector<double> frequency;
  /// Controller-believed change rate per element (per period).
  std::vector<double> change_rate;
  /// Controller-believed access probability per element.
  std::vector<double> access_prob;
  /// Element size in bandwidth units.
  std::vector<double> size;
  /// Time of the element's last applied sync (period units; 0 = never).
  std::vector<double> last_sync_time;
  /// Order-sensitive digest over every column (see DigestShard).
  uint64_t digest = 0;

  size_t count() const { return end - begin; }
};

/// FNV-1a-style order-sensitive digest of a shard block's payload columns.
/// Recomputable by readers to prove a snapshot was not torn.
uint64_t DigestShard(const ShardBlock& block);

/// Per-element view assembled by ServeSnapshot::Lookup.
struct ElementView {
  double frequency = 0.0;
  double change_rate = 0.0;
  double access_prob = 0.0;
  double size = 1.0;
  double last_sync_time = 0.0;
};

/// Aggregate facts frozen at publication.
struct SnapshotStats {
  /// Publication epoch (EpochDomain::Advance value; 1-based).
  uint64_t epoch = 0;
  /// Number of replans the controller had installed when published.
  uint64_t plan_version = 0;
  /// Loop time at publication (whole periods completed).
  double published_at = 0.0;
  /// Elements in the catalog.
  size_t num_elements = 0;
  /// Shards in the plan.
  size_t num_shards = 0;
  /// Shards rebuilt by the publication that produced this snapshot.
  size_t shards_rebuilt = 0;
  /// Sum of planned frequencies times sizes (plan bandwidth).
  double plan_bandwidth = 0.0;
};

/// One immutable published state. Create via SnapshotBuilder; query from any
/// thread without synchronization (all state is const after publication).
class ServeSnapshot {
 public:
  /// The element count.
  size_t size() const { return num_elements_; }

  /// Publication epoch.
  uint64_t epoch() const { return stats_.epoch; }

  /// Aggregate facts.
  const SnapshotStats& stats() const { return stats_; }

  /// The combined digest recorded at publication.
  uint64_t combined_digest() const { return combined_digest_; }

  /// Per-element columns for `element` (must be < size()). Lock-free: two
  /// array reads, no atomics.
  ElementView Lookup(size_t element) const {
    const size_t shard = par::ShardIndexOf(num_elements_, element);
    const ShardBlock& block = *shards_[shard];
    const size_t offset = element - block.begin;
    return ElementView{block.frequency[offset], block.change_rate[offset],
                       block.access_prob[offset], block.size[offset],
                       block.last_sync_time[offset]};
  }

  /// The shard blocks (for iteration / consistency checks).
  const std::vector<std::shared_ptr<const ShardBlock>>& shards() const {
    return shards_;
  }

  /// Recomputes every shard digest and their combination and compares
  /// against the values recorded at publication. True = internally
  /// consistent (no torn publication, no mutation since). This is O(N);
  /// meant for tests, torture readers, and the serving bench's sampled
  /// verification, not the query hot path.
  bool CheckConsistent() const;

 private:
  friend class SnapshotBuilder;
  ServeSnapshot() = default;

  size_t num_elements_ = 0;
  std::vector<std::shared_ptr<const ShardBlock>> shards_;
  uint64_t combined_digest_ = 0;
  SnapshotStats stats_;
};

/// Builds successive snapshots with shard-level structural sharing. Owned
/// and driven by the single publisher thread (the daemon's loop thread).
class SnapshotBuilder {
 public:
  /// A builder over `num_elements` elements. The shard plan is fixed for the
  /// builder's lifetime (the default par::ShardPlan sizing).
  explicit SnapshotBuilder(size_t num_elements);

  /// Marks one element dirty: its shard is rebuilt at the next Publish.
  void MarkDirty(size_t element);

  /// Marks every element dirty (first publication, replans).
  void MarkAllDirty();

  /// Number of shards currently marked dirty.
  size_t DirtyShards() const;

  /// Total shards in the plan.
  size_t NumShards() const { return plan_.size(); }

  /// Builds the next snapshot: dirty shards are deep-copied from the given
  /// columns, clean shards are shared from the previous snapshot. Column
  /// vectors must all have num_elements entries. `epoch` is the publication
  /// epoch the caller just opened; `plan_version` and `now` land in stats.
  /// Clears the dirty set. The first call must follow MarkAllDirty (there
  /// is no previous snapshot to share from); this is checked.
  Result<std::shared_ptr<const ServeSnapshot>> Publish(
      uint64_t epoch, uint64_t plan_version, double now,
      const std::vector<double>& frequency,
      const std::vector<double>& change_rate,
      const std::vector<double>& access_prob,
      const std::vector<double>& size,
      const std::vector<double>& last_sync_time);

 private:
  size_t num_elements_;
  std::vector<par::Shard> plan_;
  std::vector<uint8_t> dirty_;  // Per shard.
  uint64_t publish_seq_ = 0;
  // The builder keeps its own reference to the last snapshot purely as the
  // sharing source; lifetime of published snapshots is the store's job.
  std::shared_ptr<const ServeSnapshot> last_;
};

/// Combines per-shard digests in shard order (order-sensitive mix).
uint64_t CombineDigests(
    const std::vector<std::shared_ptr<const ShardBlock>>& shards);

}  // namespace serve
}  // namespace freshen

#endif  // FRESHEN_SERVE_SNAPSHOT_H_
