#include "serve/snapshot.h"

#include <cstring>

#include "common/macros.h"

namespace freshen {
namespace serve {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x00000100000001b3ULL;

uint64_t MixBytes(uint64_t hash, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t MixColumn(uint64_t hash, const std::vector<double>& column) {
  return column.empty()
             ? hash
             : MixBytes(hash, column.data(), column.size() * sizeof(double));
}

}  // namespace

uint64_t DigestShard(const ShardBlock& block) {
  uint64_t hash = kFnvOffset;
  hash = MixBytes(hash, &block.begin, sizeof(block.begin));
  hash = MixBytes(hash, &block.end, sizeof(block.end));
  hash = MixColumn(hash, block.frequency);
  hash = MixColumn(hash, block.change_rate);
  hash = MixColumn(hash, block.access_prob);
  hash = MixColumn(hash, block.size);
  hash = MixColumn(hash, block.last_sync_time);
  return hash;
}

uint64_t CombineDigests(
    const std::vector<std::shared_ptr<const ShardBlock>>& shards) {
  uint64_t combined = kFnvOffset;
  for (const std::shared_ptr<const ShardBlock>& shard : shards) {
    const uint64_t digest = shard->digest;
    combined = MixBytes(combined, &digest, sizeof(digest));
  }
  return combined;
}

bool ServeSnapshot::CheckConsistent() const {
  if (shards_.empty()) return num_elements_ == 0;
  size_t expected_begin = 0;
  for (const std::shared_ptr<const ShardBlock>& shard : shards_) {
    if (shard == nullptr) return false;
    if (shard->begin != expected_begin || shard->end < shard->begin) {
      return false;
    }
    if (DigestShard(*shard) != shard->digest) return false;
    expected_begin = shard->end;
  }
  if (expected_begin != num_elements_) return false;
  return CombineDigests(shards_) == combined_digest_;
}

SnapshotBuilder::SnapshotBuilder(size_t num_elements)
    : num_elements_(num_elements),
      plan_(par::ShardPlan(num_elements)),
      dirty_(plan_.size(), 0) {}

void SnapshotBuilder::MarkDirty(size_t element) {
  FRESHEN_CHECK(element < num_elements_);
  dirty_[par::ShardIndexOf(num_elements_, element)] = 1;
}

void SnapshotBuilder::MarkAllDirty() {
  std::fill(dirty_.begin(), dirty_.end(), uint8_t{1});
}

size_t SnapshotBuilder::DirtyShards() const {
  size_t dirty = 0;
  for (uint8_t flag : dirty_) dirty += flag;
  return dirty;
}

Result<std::shared_ptr<const ServeSnapshot>> SnapshotBuilder::Publish(
    uint64_t epoch, uint64_t plan_version, double now,
    const std::vector<double>& frequency,
    const std::vector<double>& change_rate,
    const std::vector<double>& access_prob, const std::vector<double>& size,
    const std::vector<double>& last_sync_time) {
  if (frequency.size() != num_elements_ ||
      change_rate.size() != num_elements_ ||
      access_prob.size() != num_elements_ || size.size() != num_elements_ ||
      last_sync_time.size() != num_elements_) {
    return Status::InvalidArgument("snapshot column length mismatch");
  }
  ++publish_seq_;

  auto snapshot = std::shared_ptr<ServeSnapshot>(new ServeSnapshot());
  snapshot->num_elements_ = num_elements_;
  snapshot->shards_.resize(plan_.size());

  size_t rebuilt = 0;
  for (size_t s = 0; s < plan_.size(); ++s) {
    if (!dirty_[s]) {
      if (last_ == nullptr) {
        return Status::FailedPrecondition(
            "first Publish must follow MarkAllDirty");
      }
      snapshot->shards_[s] = last_->shards_[s];
      continue;
    }
    const par::Shard& shard = plan_[s];
    auto block = std::make_shared<ShardBlock>();
    block->begin = shard.begin;
    block->end = shard.end;
    block->built_seq = publish_seq_;
    const size_t n = shard.size();
    block->frequency.assign(frequency.begin() + shard.begin,
                            frequency.begin() + shard.end);
    block->change_rate.assign(change_rate.begin() + shard.begin,
                              change_rate.begin() + shard.end);
    block->access_prob.assign(access_prob.begin() + shard.begin,
                              access_prob.begin() + shard.end);
    block->size.assign(size.begin() + shard.begin, size.begin() + shard.end);
    block->last_sync_time.assign(last_sync_time.begin() + shard.begin,
                                 last_sync_time.begin() + shard.end);
    FRESHEN_CHECK(block->frequency.size() == n);
    block->digest = DigestShard(*block);
    snapshot->shards_[s] = std::move(block);
    ++rebuilt;
  }
  std::fill(dirty_.begin(), dirty_.end(), uint8_t{0});

  snapshot->combined_digest_ = CombineDigests(snapshot->shards_);
  SnapshotStats& stats = snapshot->stats_;
  stats.epoch = epoch;
  stats.plan_version = plan_version;
  stats.published_at = now;
  stats.num_elements = num_elements_;
  stats.num_shards = plan_.size();
  stats.shards_rebuilt = rebuilt;
  double bandwidth = 0.0;
  for (size_t i = 0; i < num_elements_; ++i) {
    bandwidth += frequency[i] * size[i];
  }
  stats.plan_bandwidth = bandwidth;

  last_ = snapshot;
  return std::shared_ptr<const ServeSnapshot>(std::move(snapshot));
}

}  // namespace serve
}  // namespace freshen
