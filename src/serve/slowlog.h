// SlowQueryLog — a fixed-capacity ring of the slowest recent requests, the
// freshend equivalent of redis SLOWLOG. The protocol layer records every
// request whose handling time crosses the configured threshold; SLOWLOG
// dumps the retained entries (newest first) so an operator can see *which*
// commands are slow without attaching a profiler.
//
// Mutex-protected: recording happens on connection-handler threads and
// dumping on whichever handler serves the SLOWLOG command. The ring is
// small (default 64 entries) and entries are bounded (requests truncate to
// 128 bytes), so the lock is held for nanoseconds.
#ifndef FRESHEN_SERVE_SLOWLOG_H_
#define FRESHEN_SERVE_SLOWLOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace freshen {
namespace serve {

/// One retained slow request.
struct SlowQueryEntry {
  /// Monotonic id over all recorded entries (total_recorded() - based), so
  /// dumps can be correlated across polls even as the ring wraps.
  uint64_t id = 0;
  /// The request line (truncated to 128 bytes).
  std::string request;
  /// The dispatched verb ("isfresh", "metrics", ...).
  std::string command;
  /// Handling time, seconds.
  double seconds = 0.0;
  /// Daemon uptime when recorded, seconds.
  double recorded_at = 0.0;
};

/// Thread-safe fixed-capacity slow-query ring.
class SlowQueryLog {
 public:
  struct Options {
    /// Entries retained (older entries are overwritten).
    size_t capacity = 64;
    /// Requests at or above this handling time are recorded. 0 records
    /// every request (useful in tests and drills).
    double threshold_seconds = 0.010;
  };

  explicit SlowQueryLog(Options options);

  /// Records one request if `seconds` crosses the threshold. Returns true
  /// when recorded.
  bool Record(std::string_view request, std::string_view command,
              double seconds, double recorded_at);

  /// Retained entries, newest first.
  std::vector<SlowQueryEntry> Entries() const;

  /// Entries ever recorded (>= Entries().size()).
  uint64_t total_recorded() const;

  /// Drops all retained entries (the counter keeps running).
  void Clear();

  double threshold_seconds() const { return options_.threshold_seconds; }
  size_t capacity() const { return options_.capacity; }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> ring_;  // Guarded by mu_; ring_[next_] oldest.
  size_t next_ = 0;                   // Guarded by mu_.
  uint64_t recorded_ = 0;             // Guarded by mu_.
};

}  // namespace serve
}  // namespace freshen

#endif  // FRESHEN_SERVE_SLOWLOG_H_
