#include "serve/daemon.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/build_info.h"
#include "obs/trace.h"

namespace freshen {
namespace serve {

Result<std::unique_ptr<FreshendDaemon>> FreshendDaemon::Create(
    ElementSet truth, double bandwidth, Options options) {
  if (options.loop.on_period_end) {
    return Status::InvalidArgument(
        "loop.on_period_end is owned by the daemon; leave it unset");
  }
  if (options.loop.slo != nullptr || options.loop.drift != nullptr) {
    return Status::InvalidArgument(
        "loop.slo/loop.drift are owned by the daemon; leave them unset "
        "(configure Options::slo / Options::drift instead)");
  }
  if (!(options.freshness_threshold >= 0.0 &&
        options.freshness_threshold <= 1.0)) {
    return Status::InvalidArgument("freshness_threshold must be in [0, 1]");
  }
  if (!(options.period_seconds >= 0.0) ||
      !std::isfinite(options.period_seconds)) {
    return Status::InvalidArgument("period_seconds must be finite and >= 0");
  }
  if (options.loop.registry == nullptr) {
    options.loop.registry = options.registry;
  }
  const size_t n = truth.size();
  std::unique_ptr<FreshendDaemon> daemon(new FreshendDaemon(options, n));
  daemon->size_ = Sizes(truth);

  // Telemetry plane: the daemon owns the monitor/detector and hands the
  // loop raw pointers (the daemon outlives its loop by construction).
  if (options.enable_slo) {
    Options& opts = daemon->options_;
    if (opts.slo.registry == nullptr) opts.slo.registry = opts.registry;
    FRESHEN_ASSIGN_OR_RETURN(obs::SloMonitor monitor,
                             obs::SloMonitor::Create(opts.slo));
    daemon->slo_ = std::make_unique<obs::SloMonitor>(std::move(monitor));
    daemon->options_.loop.slo = daemon->slo_.get();
  }
  if (options.enable_drift) {
    Options& opts = daemon->options_;
    opts.drift.num_elements = n;
    if (opts.drift.registry == nullptr) opts.drift.registry = opts.registry;
    FRESHEN_ASSIGN_OR_RETURN(obs::DriftDetector detector,
                             obs::DriftDetector::Create(opts.drift));
    daemon->drift_ =
        std::make_unique<obs::DriftDetector>(std::move(detector));
    daemon->options_.loop.drift = daemon->drift_.get();
    daemon->options_.loop.drift_replan = options.drift_replan;
  }

  daemon->options_.loop.on_period_end =
      [d = daemon.get()](const PeriodStats& stats,
                         const std::vector<uint32_t>& synced) {
        d->PublishBoundary(stats.replanned, synced);
      };
  FRESHEN_ASSIGN_OR_RETURN(
      OnlineFreshenLoop loop,
      OnlineFreshenLoop::Create(std::move(truth), bandwidth,
                                daemon->options_.loop));
  daemon->loop_ = std::make_unique<OnlineFreshenLoop>(std::move(loop));

  // Initial publication (epoch 1): the controller's cold-start plan over
  // its cold-start beliefs, nothing synced yet. Queries work from here on.
  daemon->last_sync_.assign(n, 0.0);
  daemon->PublishBoundary(/*replanned=*/false, {});
  return daemon;
}

FreshendDaemon::FreshendDaemon(Options options, size_t num_elements)
    : options_(std::move(options)),
      num_elements_(num_elements),
      builder_(num_elements),
      store_(options_.registry),
      slow_log_(std::make_unique<SlowQueryLog>(options_.slowlog)),
      registry_(options_.registry != nullptr
                    ? options_.registry
                    : &obs::MetricsRegistry::Global()) {
  obs::ExportBuildInfo(registry_);
  uptime_gauge_ = registry_->GetGauge("freshen_uptime_seconds");
  fresh_queries_counter_ = registry_->GetCounter(
      "freshen_serve_queries_total", {{"kind", "is_fresh"}});
  age_queries_counter_ = registry_->GetCounter("freshen_serve_queries_total",
                                               {{"kind", "expected_age"}});
  plan_queries_counter_ = registry_->GetCounter(
      "freshen_serve_queries_total", {{"kind", "get_plan"}});
  stats_queries_counter_ = registry_->GetCounter(
      "freshen_serve_queries_total", {{"kind", "stats"}});
  full_publish_counter_ = registry_->GetCounter(
      "freshen_serve_publishes_total", {{"kind", "full"}});
  delta_publish_counter_ = registry_->GetCounter(
      "freshen_serve_publishes_total", {{"kind", "delta"}});
  publish_seconds_ = registry_->GetHistogram(
      "freshen_serve_publish_seconds", obs::LatencySecondsBuckets());
}

FreshendDaemon::~FreshendDaemon() {
  Stop();
  // store_ drains readers and frees every snapshot in its destructor.
}

void FreshendDaemon::PublishBoundary(bool replanned,
                                     const std::vector<uint32_t>& synced) {
  obs::ScopedSpan span("serve_publish", *registry_);
  WallTimer timer;
  // A delta-mode replan whose plan is provably byte-identical to the
  // previous one (pinned/no-op path: all_touched == false) does not force
  // the O(N) rebuild: frequency_ is still exact, and only the shards this
  // period actually touched republish.
  const bool plan_unchanged =
      replanned && !loop_->controller().last_replan().all_touched;
  const bool rebuild_all = catalog_dirty_ || (replanned && !plan_unchanged);
  if (rebuild_all) {
    // A replan can move every frequency and the controller's beliefs; the
    // whole catalog republishes. This is the O(N) slow path — it runs once
    // per replan cadence, not once per period.
    builder_.MarkAllDirty();
    const ElementSet believed = loop_->controller().BelievedCatalog();
    change_rate_.resize(num_elements_);
    access_prob_.resize(num_elements_);
    for (size_t i = 0; i < num_elements_; ++i) {
      change_rate_[i] = believed[i].change_rate;
      access_prob_[i] = believed[i].access_prob;
    }
    frequency_ = loop_->controller().frequencies();
    catalog_dirty_ = false;
  } else {
    for (uint32_t id : synced) builder_.MarkDirty(id);
    if (plan_unchanged) {
      // O(synced) delta publication: refresh the believed change rate of
      // the shards that synced (their beliefs are what moved). access_prob_
      // may drift within the controller's deadband until the next full
      // publish — the plan those probabilities produced is byte-unchanged,
      // so served verdicts stay consistent with the installed plan.
      for (uint32_t id : synced) {
        change_rate_[id] = loop_->controller().BelievedChangeRate(id);
      }
    }
  }
  const MirrorState& mirror = loop_->mirror();
  for (uint32_t id : synced) {
    last_sync_[id] = mirror.LastSyncTime(id);
  }
  auto snapshot = builder_.Publish(
      store_.CurrentEpoch() + 1, loop_->controller().num_replans(),
      loop_->Now(), frequency_, change_rate_, access_prob_, size_,
      last_sync_);
  FRESHEN_CHECK(snapshot.ok());
  store_.Publish(std::move(*snapshot));
  (rebuild_all ? full_publish_counter_ : delta_publish_counter_)->Increment();
  publish_seconds_->Record(timer.ElapsedSeconds());
}

Status FreshendDaemon::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("daemon already running");
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { LoopMain(); });
  return Status::OK();
}

void FreshendDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(pacing_mu_);
    stop_requested_.store(true, std::memory_order_release);
  }
  pacing_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void FreshendDaemon::LoopMain() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    WallTimer period_timer;
    loop_->RunPeriod();  // Publishes via the on_period_end hook.
    const uint64_t done = periods_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.max_periods != 0 && done >= options_.max_periods) break;
    if (options_.period_seconds > 0.0) {
      const double remaining =
          options_.period_seconds - period_timer.ElapsedSeconds();
      if (remaining > 0.0) {
        std::unique_lock<std::mutex> lock(pacing_mu_);
        pacing_cv_.wait_for(
            lock, std::chrono::duration<double>(remaining), [this] {
              return stop_requested_.load(std::memory_order_acquire);
            });
      }
    }
  }
  running_.store(false, std::memory_order_release);
}

Result<FreshnessVerdict> FreshendDaemon::IsFresh(size_t id) const {
  SnapshotRef ref = store_.Acquire();
  if (!ref) return Status::FailedPrecondition("no snapshot published yet");
  if (id >= ref->size()) {
    return Status::OutOfRange(StrFormat("element %zu out of range [0, %zu)",
                                        id, ref->size()));
  }
  const ElementView view = ref->Lookup(id);
  FreshnessVerdict verdict;
  verdict.epoch = ref->epoch();
  verdict.elapsed =
      std::max(0.0, ref->stats().published_at - view.last_sync_time);
  verdict.fresh_probability =
      view.change_rate > 0.0
          ? std::exp(-view.change_rate * verdict.elapsed)
          : 1.0;
  verdict.fresh =
      verdict.fresh_probability >= options_.freshness_threshold;
  fresh_queries_counter_->Increment();
  return verdict;
}

Result<AgeEstimate> FreshendDaemon::ExpectedAge(size_t id) const {
  SnapshotRef ref = store_.Acquire();
  if (!ref) return Status::FailedPrecondition("no snapshot published yet");
  if (id >= ref->size()) {
    return Status::OutOfRange(StrFormat("element %zu out of range [0, %zu)",
                                        id, ref->size()));
  }
  const ElementView view = ref->Lookup(id);
  AgeEstimate estimate;
  estimate.epoch = ref->epoch();
  estimate.elapsed =
      std::max(0.0, ref->stats().published_at - view.last_sync_time);
  // E[age] over an elapsed window tau with Poisson(lambda) updates:
  //   tau - (1 - e^{-lambda tau}) / lambda,
  // evaluated with expm1 so tiny lambda*tau does not cancel.
  const double lt = view.change_rate * estimate.elapsed;
  estimate.expected_age =
      view.change_rate > 0.0
          ? estimate.elapsed + std::expm1(-lt) / view.change_rate
          : 0.0;
  age_queries_counter_->Increment();
  return estimate;
}

Result<PlanEntry> FreshendDaemon::GetPlan(size_t id) const {
  SnapshotRef ref = store_.Acquire();
  if (!ref) return Status::FailedPrecondition("no snapshot published yet");
  if (id >= ref->size()) {
    return Status::OutOfRange(StrFormat("element %zu out of range [0, %zu)",
                                        id, ref->size()));
  }
  const ElementView view = ref->Lookup(id);
  PlanEntry entry;
  entry.epoch = ref->epoch();
  entry.frequency = view.frequency;
  entry.interval = view.frequency > 0.0
                       ? 1.0 / view.frequency
                       : std::numeric_limits<double>::infinity();
  entry.bandwidth_share = view.frequency * view.size;
  plan_queries_counter_->Increment();
  return entry;
}

DaemonStats FreshendDaemon::Stats() const {
  DaemonStats stats;
  if (SnapshotRef ref = store_.Acquire()) {
    stats.snapshot = ref->stats();
  }
  stats.store = store_.stats();
  stats.periods = periods_.load(std::memory_order_relaxed);
  stats.queries = static_cast<uint64_t>(
      fresh_queries_counter_->value() + age_queries_counter_->value() +
      plan_queries_counter_->value() + stats_queries_counter_->value());
  stats.pinned_readers = store_.PinnedReaders();
  stats.running = running_.load(std::memory_order_acquire);
  uptime_gauge_->Set(UptimeSeconds());
  stats_queries_counter_->Increment();
  return stats;
}

}  // namespace serve
}  // namespace freshen
