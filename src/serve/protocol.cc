#include "serve/protocol.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/string_util.h"
#include "obs/export.h"

namespace freshen {
namespace serve {
namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string Lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

// JSON has no NaN/Infinity literals; clamp them to null.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return StrFormat("%.17g", value);
}

ProtocolResponse Error(const std::string& message) {
  ProtocolResponse response;
  response.line =
      "{\"ok\":false,\"error\":\"" + obs::JsonEscape(message) + "\"}";
  return response;
}

ProtocolResponse FromStatus(const Status& status) {
  return Error(status.ToString());
}

// Parses the single <id> argument of ISFRESH/AGE/PLAN.
bool ParseId(std::string_view arg, size_t* id) {
  arg = Trim(arg);
  if (arg.empty()) return false;
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(arg.data(), arg.data() + arg.size(), value);
  if (ec != std::errc() || ptr != arg.data() + arg.size()) return false;
  *id = static_cast<size_t>(value);
  return true;
}

}  // namespace

ProtocolResponse HandleRequestLine(const FreshendDaemon& daemon,
                                   std::string_view line) {
  const std::string_view trimmed = Trim(line);
  if (trimmed.empty()) return Error("empty request");
  if (trimmed.size() > 256) return Error("request too long");

  const size_t space = trimmed.find(' ');
  const std::string verb = Lower(trimmed.substr(0, space));
  const std::string_view args =
      space == std::string_view::npos ? std::string_view()
                                      : trimmed.substr(space + 1);

  if (verb == "ping") {
    return ProtocolResponse{"{\"ok\":true,\"cmd\":\"ping\"}", false};
  }
  if (verb == "quit") {
    return ProtocolResponse{"{\"ok\":true,\"cmd\":\"quit\"}", true};
  }
  if (verb == "stats") {
    const DaemonStats stats = daemon.Stats();
    ProtocolResponse response;
    response.line = StrFormat(
        "{\"ok\":true,\"cmd\":\"stats\",\"epoch\":%llu,"
        "\"plan_version\":%llu,\"published_at\":%s,"
        "\"num_elements\":%zu,\"num_shards\":%zu,"
        "\"shards_rebuilt\":%zu,\"plan_bandwidth\":%s,"
        "\"periods\":%llu,\"queries\":%llu,"
        "\"publications\":%llu,\"snapshots_retired\":%llu,"
        "\"snapshots_reclaimed\":%llu,\"retired_pending\":%zu,"
        "\"pinned_readers\":%zu,\"running\":%s}",
        static_cast<unsigned long long>(stats.snapshot.epoch),
        static_cast<unsigned long long>(stats.snapshot.plan_version),
        JsonNumber(stats.snapshot.published_at).c_str(),
        stats.snapshot.num_elements, stats.snapshot.num_shards,
        stats.snapshot.shards_rebuilt,
        JsonNumber(stats.snapshot.plan_bandwidth).c_str(),
        static_cast<unsigned long long>(stats.periods),
        static_cast<unsigned long long>(stats.queries),
        static_cast<unsigned long long>(stats.store.publications),
        static_cast<unsigned long long>(stats.store.snapshots_retired),
        static_cast<unsigned long long>(stats.store.snapshots_reclaimed),
        stats.store.retired_pending, stats.pinned_readers,
        stats.running ? "true" : "false");
    return response;
  }

  // The remaining verbs all take exactly one element id.
  size_t id = 0;
  if (verb == "isfresh" || verb == "age" || verb == "plan") {
    if (!ParseId(args, &id)) {
      return Error("usage: " + verb + " <element-id>");
    }
  }

  if (verb == "isfresh") {
    auto verdict = daemon.IsFresh(id);
    if (!verdict.ok()) return FromStatus(verdict.status());
    ProtocolResponse response;
    response.line = StrFormat(
        "{\"ok\":true,\"cmd\":\"isfresh\",\"id\":%zu,\"epoch\":%llu,"
        "\"fresh\":%s,\"p_fresh\":%s,\"elapsed\":%s}",
        id, static_cast<unsigned long long>(verdict->epoch),
        verdict->fresh ? "true" : "false",
        JsonNumber(verdict->fresh_probability).c_str(),
        JsonNumber(verdict->elapsed).c_str());
    return response;
  }
  if (verb == "age") {
    auto estimate = daemon.ExpectedAge(id);
    if (!estimate.ok()) return FromStatus(estimate.status());
    ProtocolResponse response;
    response.line = StrFormat(
        "{\"ok\":true,\"cmd\":\"age\",\"id\":%zu,\"epoch\":%llu,"
        "\"expected_age\":%s,\"elapsed\":%s}",
        id, static_cast<unsigned long long>(estimate->epoch),
        JsonNumber(estimate->expected_age).c_str(),
        JsonNumber(estimate->elapsed).c_str());
    return response;
  }
  if (verb == "plan") {
    auto entry = daemon.GetPlan(id);
    if (!entry.ok()) return FromStatus(entry.status());
    ProtocolResponse response;
    response.line = StrFormat(
        "{\"ok\":true,\"cmd\":\"plan\",\"id\":%zu,\"epoch\":%llu,"
        "\"frequency\":%s,\"interval\":%s,\"bandwidth_share\":%s}",
        id, static_cast<unsigned long long>(entry->epoch),
        JsonNumber(entry->frequency).c_str(),
        JsonNumber(entry->interval).c_str(),
        JsonNumber(entry->bandwidth_share).c_str());
    return response;
  }
  return Error("unknown command: " + verb +
               " (expected isfresh/age/plan/stats/ping/quit)");
}

}  // namespace serve
}  // namespace freshen
