#include "serve/protocol.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "obs/build_info.h"
#include "obs/drift.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "serve/slowlog.h"

namespace freshen {
namespace serve {
namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string Lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

// JSON has no NaN/Infinity literals; clamp them to null.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return StrFormat("%.17g", value);
}

ProtocolResponse Error(const std::string& message) {
  ProtocolResponse response;
  response.line =
      "{\"ok\":false,\"error\":\"" + obs::JsonEscape(message) + "\"}";
  return response;
}

ProtocolResponse FromStatus(const Status& status) {
  return Error(status.ToString());
}

// Parses the single <id> argument of ISFRESH/AGE/PLAN.
bool ParseId(std::string_view arg, size_t* id) {
  arg = Trim(arg);
  if (arg.empty()) return false;
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(arg.data(), arg.data() + arg.size(), value);
  if (ec != std::errc() || ptr != arg.data() + arg.size()) return false;
  *id = static_cast<size_t>(value);
  return true;
}

bool ParseDouble(std::string_view arg, double* value) {
  arg = Trim(arg);
  if (arg.empty()) return false;
  // from_chars<double> is reliable on the GCC this project targets.
  const auto [ptr, ec] =
      std::from_chars(arg.data(), arg.data() + arg.size(), *value);
  return ec == std::errc() && ptr == arg.data() + arg.size();
}

// Splits args on whitespace into at most 2 tokens.
std::vector<std::string_view> SplitArgs(std::string_view args) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < args.size()) {
    while (pos < args.size() &&
           std::isspace(static_cast<unsigned char>(args[pos]))) {
      ++pos;
    }
    size_t end = pos;
    while (end < args.size() &&
           !std::isspace(static_cast<unsigned char>(args[end]))) {
      ++end;
    }
    if (end > pos) tokens.push_back(args.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

std::string WindowJson(const obs::SloWindowView& window) {
  return StrFormat(
      "{\"window_periods\":%s,\"periods\":%llu,\"accesses\":%llu,"
      "\"good\":%llu,\"bad_ratio\":%s,\"burn_rate\":%s}",
      JsonNumber(window.length_periods).c_str(),
      static_cast<unsigned long long>(window.periods),
      static_cast<unsigned long long>(window.accesses),
      static_cast<unsigned long long>(window.good),
      JsonNumber(window.bad_ratio).c_str(),
      JsonNumber(window.burn_rate).c_str());
}

// The drift detector's report as a JSON object ("null" when detached).
std::string DriftJson(const FreshendDaemon& daemon) {
  const obs::DriftDetector* drift = daemon.drift();
  if (drift == nullptr) return "null";
  const obs::DriftReport report = drift->Report();
  std::string top = "[";
  for (size_t i = 0; i < report.top.size(); ++i) {
    if (i > 0) top += ',';
    const obs::DriftOffender& offender = report.top[i];
    top += StrFormat(
        "{\"element\":%zu,\"planned_rate\":%s,\"observed_rate\":%s,"
        "\"score\":%s,\"evidence\":%s}",
        offender.element, JsonNumber(offender.planned_rate).c_str(),
        JsonNumber(offender.observed_rate).c_str(),
        JsonNumber(offender.score).c_str(),
        JsonNumber(offender.evidence).c_str());
  }
  top += ']';
  return StrFormat(
      "{\"aggregate_score\":%s,\"max_score\":%s,\"scored_elements\":%zu,"
      "\"flagged_elements\":%zu,\"replan_recommended\":%s,"
      "\"periods_above_threshold\":%u,\"replans_triggered\":%llu,"
      "\"top\":%s}",
      JsonNumber(report.aggregate_score).c_str(),
      JsonNumber(report.max_score).c_str(), report.scored_elements,
      report.flagged_elements, report.replan_recommended ? "true" : "false",
      report.periods_above_threshold,
      static_cast<unsigned long long>(report.replans_triggered),
      top.c_str());
}

ProtocolResponse HandleMetrics(const FreshendDaemon& daemon,
                               std::string_view args) {
  const std::string format =
      args.empty() ? std::string("json") : Lower(Trim(args));
  const obs::RegistrySnapshot snapshot = daemon.registry().Snapshot();
  ProtocolResponse response;
  if (format == "json") {
    // FormatJson is pretty-printed with "\n  " separators; dropping the
    // newlines yields the same document on one line.
    std::string payload = obs::FormatJson(snapshot);
    payload.erase(std::remove(payload.begin(), payload.end(), '\n'),
                  payload.end());
    response.line = StrFormat(
        "{\"ok\":true,\"cmd\":\"metrics\",\"format\":\"json\","
        "\"series\":%zu,\"payload\":%s}",
        snapshot.samples.size(), payload.c_str());
    return response;
  }
  if (format == "prom") {
    response.line = StrFormat(
        "{\"ok\":true,\"cmd\":\"metrics\",\"format\":\"prom\","
        "\"series\":%zu,\"payload\":\"%s\"}",
        snapshot.samples.size(),
        obs::JsonEscape(obs::FormatPrometheus(snapshot)).c_str());
    return response;
  }
  return Error("usage: metrics [json|prom]");
}

ProtocolResponse HandleHealth(const FreshendDaemon& daemon) {
  const DaemonStats stats = daemon.Stats();
  obs::MetricsRegistry& registry = daemon.registry();
  // The server shares the daemon's registry, so its saturation counters
  // are readable here (GetCounter registers-at-zero when no server runs).
  const double rejected =
      registry.GetCounter("freshen_serve_rejected_total")->value();
  const double overflow =
      registry.GetCounter("freshen_serve_overflow_total")->value();
  const obs::EventRecorder::Stats recorder =
      obs::EventRecorder::Global().stats();

  const obs::SloMonitor* slo = daemon.slo();
  const obs::SloState slo_state =
      slo != nullptr ? slo->state() : obs::SloState::kOk;
  std::string slo_state_json = "null";
  if (slo != nullptr) {
    slo_state_json = StrFormat("\"%s\"", obs::SloStateName(slo_state));
  }
  const char* status = "ok";
  if (slo != nullptr && slo_state == obs::SloState::kAlert) {
    status = "critical";
  } else if ((slo != nullptr && slo_state == obs::SloState::kBurning) ||
             rejected > 0.0 || overflow > 0.0) {
    status = "degraded";
  }

  ProtocolResponse response;
  response.line = StrFormat(
      "{\"ok\":true,\"cmd\":\"health\",\"status\":\"%s\","
      "\"running\":%s,\"uptime_seconds\":%s,\"periods\":%llu,"
      "\"epoch\":%llu,\"slo_state\":%s,"
      "\"rejected_connections\":%s,\"overflow_disconnects\":%s,"
      "\"recorder_emitted\":%llu,\"recorder_recorded\":%llu,"
      "\"recorder_dropped\":%llu,\"slow_queries\":%llu,"
      "\"drift_replan_recommended\":%s}",
      status, stats.running ? "true" : "false",
      JsonNumber(daemon.UptimeSeconds()).c_str(),
      static_cast<unsigned long long>(stats.periods),
      static_cast<unsigned long long>(stats.snapshot.epoch),
      slo_state_json.c_str(),
      JsonNumber(rejected).c_str(), JsonNumber(overflow).c_str(),
      static_cast<unsigned long long>(recorder.emitted),
      static_cast<unsigned long long>(recorder.recorded),
      static_cast<unsigned long long>(recorder.dropped),
      static_cast<unsigned long long>(daemon.slow_log()->total_recorded()),
      daemon.drift() != nullptr && daemon.drift()->replan_recommended()
          ? "true"
          : "false");
  return response;
}

ProtocolResponse HandleSlo(const FreshendDaemon& daemon) {
  const obs::SloMonitor* slo = daemon.slo();
  if (slo == nullptr) {
    return Error("slo monitor not enabled on this daemon");
  }
  const obs::SloReport report = slo->Report();
  ProtocolResponse response;
  response.line = StrFormat(
      "{\"ok\":true,\"cmd\":\"slo\",\"state\":\"%s\",\"objective\":%s,"
      "\"error_budget\":%s,\"good_is_age_slo\":%s,\"age_slo\":%s,"
      "\"transitions\":%llu,\"last_transition_time\":%s,\"now\":%s,"
      "\"fast\":%s,\"slow\":%s,\"total_accesses\":%llu,"
      "\"total_good\":%llu,\"overall_good_ratio\":%s,"
      "\"budget_remaining\":%s,\"drift\":%s}",
      obs::SloStateName(report.state), JsonNumber(report.objective).c_str(),
      JsonNumber(report.error_budget).c_str(),
      report.good_is_age_slo ? "true" : "false",
      JsonNumber(report.age_slo).c_str(),
      static_cast<unsigned long long>(report.transitions),
      JsonNumber(report.last_transition_time).c_str(),
      JsonNumber(report.now).c_str(), WindowJson(report.fast).c_str(),
      WindowJson(report.slow).c_str(),
      static_cast<unsigned long long>(report.total_accesses),
      static_cast<unsigned long long>(report.total_good),
      JsonNumber(report.overall_good_ratio).c_str(),
      JsonNumber(report.budget_remaining).c_str(),
      DriftJson(daemon).c_str());
  return response;
}

ProtocolResponse HandleSlowlog(const FreshendDaemon& daemon) {
  const SlowQueryLog& log = *daemon.slow_log();
  const std::vector<SlowQueryEntry> entries = log.Entries();
  std::string body = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) body += ',';
    body += StrFormat(
        "{\"id\":%llu,\"command\":\"%s\",\"request\":\"%s\","
        "\"seconds\":%s,\"recorded_at\":%s}",
        static_cast<unsigned long long>(entries[i].id),
        obs::JsonEscape(entries[i].command).c_str(),
        obs::JsonEscape(entries[i].request).c_str(),
        JsonNumber(entries[i].seconds).c_str(),
        JsonNumber(entries[i].recorded_at).c_str());
  }
  body += ']';
  ProtocolResponse response;
  response.line = StrFormat(
      "{\"ok\":true,\"cmd\":\"slowlog\",\"threshold_seconds\":%s,"
      "\"capacity\":%zu,\"recorded\":%llu,\"entries\":%s}",
      JsonNumber(log.threshold_seconds()).c_str(), log.capacity(),
      static_cast<unsigned long long>(log.total_recorded()), body.c_str());
  return response;
}

ProtocolResponse HandleWatch(std::string_view args) {
  const std::vector<std::string_view> tokens = SplitArgs(args);
  if (tokens.empty() || tokens.size() > 2) {
    return Error("usage: watch <interval-seconds> [count]");
  }
  double interval = 0.0;
  if (!ParseDouble(tokens[0], &interval) || !std::isfinite(interval) ||
      interval < 0.001 || interval > 3600.0) {
    return Error("watch interval must be in [0.001, 3600] seconds");
  }
  uint64_t count = 0;
  if (tokens.size() == 2) {
    size_t parsed = 0;
    if (!ParseId(tokens[1], &parsed) || parsed > 1000000) {
      return Error("watch count must be an integer in [0, 1000000]");
    }
    count = parsed;
  }
  ProtocolResponse response;
  response.watch_interval_seconds = interval;
  response.watch_count = count;
  response.line = StrFormat(
      "{\"ok\":true,\"cmd\":\"watch\",\"interval_seconds\":%s,"
      "\"count\":%llu}",
      JsonNumber(interval).c_str(),
      static_cast<unsigned long long>(count));
  return response;
}

ProtocolResponse Dispatch(const FreshendDaemon& daemon,
                          const std::string& verb, std::string_view args) {
  if (verb == "ping") {
    return ProtocolResponse{"{\"ok\":true,\"cmd\":\"ping\"}"};
  }
  if (verb == "quit") {
    ProtocolResponse response;
    response.line = "{\"ok\":true,\"cmd\":\"quit\"}";
    response.close = true;
    return response;
  }
  if (verb == "stats") {
    const DaemonStats stats = daemon.Stats();
    ProtocolResponse response;
    response.line = StrFormat(
        "{\"ok\":true,\"cmd\":\"stats\",\"epoch\":%llu,"
        "\"plan_version\":%llu,\"published_at\":%s,"
        "\"num_elements\":%zu,\"num_shards\":%zu,"
        "\"shards_rebuilt\":%zu,\"plan_bandwidth\":%s,"
        "\"periods\":%llu,\"queries\":%llu,"
        "\"publications\":%llu,\"snapshots_retired\":%llu,"
        "\"snapshots_reclaimed\":%llu,\"retired_pending\":%zu,"
        "\"pinned_readers\":%zu,\"running\":%s,"
        "\"uptime_seconds\":%s,\"build\":%s}",
        static_cast<unsigned long long>(stats.snapshot.epoch),
        static_cast<unsigned long long>(stats.snapshot.plan_version),
        JsonNumber(stats.snapshot.published_at).c_str(),
        stats.snapshot.num_elements, stats.snapshot.num_shards,
        stats.snapshot.shards_rebuilt,
        JsonNumber(stats.snapshot.plan_bandwidth).c_str(),
        static_cast<unsigned long long>(stats.periods),
        static_cast<unsigned long long>(stats.queries),
        static_cast<unsigned long long>(stats.store.publications),
        static_cast<unsigned long long>(stats.store.snapshots_retired),
        static_cast<unsigned long long>(stats.store.snapshots_reclaimed),
        stats.store.retired_pending, stats.pinned_readers,
        stats.running ? "true" : "false",
        JsonNumber(daemon.UptimeSeconds()).c_str(),
        obs::BuildInfoJson().c_str());
    return response;
  }
  if (verb == "metrics") return HandleMetrics(daemon, args);
  if (verb == "health") return HandleHealth(daemon);
  if (verb == "slo") return HandleSlo(daemon);
  if (verb == "slowlog") return HandleSlowlog(daemon);
  if (verb == "watch") return HandleWatch(args);

  // The remaining verbs all take exactly one element id.
  size_t id = 0;
  if (verb == "isfresh" || verb == "age" || verb == "plan") {
    if (!ParseId(args, &id)) {
      return Error("usage: " + verb + " <element-id>");
    }
  }

  if (verb == "isfresh") {
    auto verdict = daemon.IsFresh(id);
    if (!verdict.ok()) return FromStatus(verdict.status());
    ProtocolResponse response;
    response.line = StrFormat(
        "{\"ok\":true,\"cmd\":\"isfresh\",\"id\":%zu,\"epoch\":%llu,"
        "\"fresh\":%s,\"p_fresh\":%s,\"elapsed\":%s}",
        id, static_cast<unsigned long long>(verdict->epoch),
        verdict->fresh ? "true" : "false",
        JsonNumber(verdict->fresh_probability).c_str(),
        JsonNumber(verdict->elapsed).c_str());
    return response;
  }
  if (verb == "age") {
    auto estimate = daemon.ExpectedAge(id);
    if (!estimate.ok()) return FromStatus(estimate.status());
    ProtocolResponse response;
    response.line = StrFormat(
        "{\"ok\":true,\"cmd\":\"age\",\"id\":%zu,\"epoch\":%llu,"
        "\"expected_age\":%s,\"elapsed\":%s}",
        id, static_cast<unsigned long long>(estimate->epoch),
        JsonNumber(estimate->expected_age).c_str(),
        JsonNumber(estimate->elapsed).c_str());
    return response;
  }
  if (verb == "plan") {
    auto entry = daemon.GetPlan(id);
    if (!entry.ok()) return FromStatus(entry.status());
    ProtocolResponse response;
    response.line = StrFormat(
        "{\"ok\":true,\"cmd\":\"plan\",\"id\":%zu,\"epoch\":%llu,"
        "\"frequency\":%s,\"interval\":%s,\"bandwidth_share\":%s}",
        id, static_cast<unsigned long long>(entry->epoch),
        JsonNumber(entry->frequency).c_str(),
        JsonNumber(entry->interval).c_str(),
        JsonNumber(entry->bandwidth_share).c_str());
    return response;
  }
  return Error("unknown command: " + verb +
               " (expected isfresh/age/plan/stats/metrics/health/slo/"
               "slowlog/watch/ping/quit)");
}

// Only known verbs become histogram labels; anything a client invents is
// pooled under "unknown" so abusive input cannot grow the registry.
const char* CommandLabel(const std::string& verb) {
  static constexpr const char* kVerbs[] = {
      "ping", "quit",  "stats",   "metrics", "health", "slo",
      "slowlog", "watch", "isfresh", "age",     "plan"};
  for (const char* known : kVerbs) {
    if (verb == known) return known;
  }
  return "unknown";
}

}  // namespace

ProtocolResponse HandleRequestLine(const FreshendDaemon& daemon,
                                   std::string_view line) {
  const std::string_view trimmed = Trim(line);
  if (trimmed.empty()) return Error("empty request");
  if (trimmed.size() > 256) return Error("request too long");

  const size_t space = trimmed.find(' ');
  const std::string verb = Lower(trimmed.substr(0, space));
  const std::string_view args =
      space == std::string_view::npos ? std::string_view()
                                      : trimmed.substr(space + 1);

  WallTimer timer;
  ProtocolResponse response = Dispatch(daemon, verb, args);
  const double elapsed = timer.ElapsedSeconds();
  const char* label = CommandLabel(verb);
  daemon.registry()
      .GetHistogram("freshen_serve_command_seconds",
                    obs::LatencySecondsBuckets(), {{"cmd", label}})
      ->Record(elapsed);
  daemon.slow_log()->Record(trimmed, label, elapsed, daemon.UptimeSeconds());
  return response;
}

std::string FormatWatchSample(const FreshendDaemon& daemon, uint64_t seq) {
  const DaemonStats stats = daemon.Stats();
  const double freshness =
      daemon.registry()
          .GetGauge("freshen_mirror_perceived_freshness")
          ->value();
  std::string slo_part = "\"slo_state\":null";
  if (const obs::SloMonitor* slo = daemon.slo()) {
    const obs::SloReport report = slo->Report();
    slo_part = StrFormat(
        "\"slo_state\":\"%s\",\"fast_burn\":%s,\"slow_burn\":%s,"
        "\"budget_remaining\":%s",
        obs::SloStateName(report.state),
        JsonNumber(report.fast.burn_rate).c_str(),
        JsonNumber(report.slow.burn_rate).c_str(),
        JsonNumber(report.budget_remaining).c_str());
  }
  std::string drift_part = "\"drift_score\":null";
  if (const obs::DriftDetector* drift = daemon.drift()) {
    const obs::DriftReport report = drift->Report();
    drift_part = StrFormat(
        "\"drift_score\":%s,\"drift_flagged\":%zu",
        JsonNumber(report.aggregate_score).c_str(),
        report.flagged_elements);
  }
  return StrFormat(
      "{\"ok\":true,\"cmd\":\"watch_sample\",\"seq\":%llu,"
      "\"uptime_seconds\":%s,\"epoch\":%llu,\"periods\":%llu,"
      "\"queries\":%llu,\"running\":%s,\"perceived_freshness\":%s,%s,%s}",
      static_cast<unsigned long long>(seq),
      JsonNumber(daemon.UptimeSeconds()).c_str(),
      static_cast<unsigned long long>(stats.snapshot.epoch),
      static_cast<unsigned long long>(stats.periods),
      static_cast<unsigned long long>(stats.queries),
      stats.running ? "true" : "false", JsonNumber(freshness).c_str(),
      slo_part.c_str(), drift_part.c_str());
}

}  // namespace serve
}  // namespace freshen
