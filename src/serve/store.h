// SnapshotStore — the concurrency seam of the freshend daemon: one
// publisher (the online-loop thread) swapping immutable ServeSnapshots in,
// many readers pinning them lock-free.
//
// Read side (steady state): Acquire() pins the current epoch in a
// per-thread EpochDomain slot (one seq_cst store + load, no CAS, no
// locks, no allocation), loads the current snapshot pointer, and returns a
// SnapshotRef guard. A retry happens only when a publication races the pin —
// bounded by publisher progress, so readers are lock-free. Everything a
// query touches through the guard is immutable.
//
// Write side: Publish() installs a new snapshot, retires the previous one
// into the epoch domain, and reclaims whatever retired snapshots no reader
// can still see. The memory-ordering argument lives in common/epoch.h; the
// store adds the pointer/epoch pairing: the current-snapshot pointer is
// stored BEFORE the epoch advances, and readers validate their pinned epoch
// after loading the pointer, so a pinned reader can only ever hold a
// snapshot whose epoch is >= its pin — exactly the set the domain protects.
#ifndef FRESHEN_SERVE_STORE_H_
#define FRESHEN_SERVE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/epoch.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"

namespace freshen {
namespace serve {

class SnapshotStore;

/// RAII pinned view of one published snapshot. Movable, not copyable; keep
/// it only as long as one query needs (a held ref delays reclamation of
/// every snapshot published since).
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(SnapshotRef&& other) noexcept
      : store_(other.store_), snapshot_(other.snapshot_) {
    other.store_ = nullptr;
    other.snapshot_ = nullptr;
  }
  SnapshotRef& operator=(SnapshotRef&& other) noexcept;
  ~SnapshotRef();

  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;

  /// True when a snapshot is pinned (false only before the first Publish).
  explicit operator bool() const { return snapshot_ != nullptr; }

  const ServeSnapshot& operator*() const { return *snapshot_; }
  const ServeSnapshot* operator->() const { return snapshot_; }
  const ServeSnapshot* get() const { return snapshot_; }

 private:
  friend class SnapshotStore;
  SnapshotRef(SnapshotStore* store, const ServeSnapshot* snapshot)
      : store_(store), snapshot_(snapshot) {}

  SnapshotStore* store_ = nullptr;
  const ServeSnapshot* snapshot_ = nullptr;
};

/// Publication + reclamation statistics (mirrored into freshen_serve_*).
struct StoreStats {
  uint64_t publications = 0;
  uint64_t snapshots_retired = 0;
  uint64_t snapshots_reclaimed = 0;
  uint64_t current_epoch = 0;
  size_t retired_pending = 0;
};

/// The swap point. Thread-safe: Acquire from any thread; Publish/Drain from
/// one publisher thread at a time.
class SnapshotStore {
 public:
  /// `registry` backs the freshen_serve_* store metrics; nullptr = the
  /// process-wide registry.
  explicit SnapshotStore(obs::MetricsRegistry* registry = nullptr);

  /// Drains readers and frees every snapshot.
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Pins and returns the current snapshot (empty ref before the first
  /// Publish). Lock-free at steady state.
  SnapshotRef Acquire();

  /// Installs `snapshot` as current, retires the previous one, and
  /// opportunistically reclaims. Returns the publication epoch. The store
  /// shares ownership of the snapshot; the caller may drop its reference.
  uint64_t Publish(std::shared_ptr<const ServeSnapshot> snapshot);

  /// Epoch the next Publish will open; also the count of publications + 1.
  uint64_t CurrentEpoch() const { return domain_.CurrentEpoch(); }

  /// Blocks until all readers unpinned, then frees all retired snapshots.
  /// Publisher/owner thread only (shutdown path).
  void Drain();

  /// Point-in-time stats (publisher counters are exact; reader gauges are
  /// sampled).
  StoreStats stats() const;

  /// Readers currently pinned (sampled).
  size_t PinnedReaders() const { return domain_.PinnedReaders(); }

 private:
  friend class SnapshotRef;
  void Release();  // SnapshotRef destructor -> Unpin.

  EpochDomain domain_;
  std::atomic<const ServeSnapshot*> current_{nullptr};

  // Publisher-owned: keeps every published snapshot alive until the epoch
  // domain says its readers are gone. shared_ptr ownership lives here (and
  // in the retire lambdas); readers deal only in raw pointers + pins.
  std::shared_ptr<const ServeSnapshot> current_owner_;

  std::atomic<uint64_t> retired_total_{0};
  std::atomic<uint64_t> reclaimed_total_{0};

  obs::MetricsRegistry* registry_;
  obs::Counter* publications_counter_;
  obs::Counter* reclaimed_counter_;
  obs::Counter* acquires_counter_;
  obs::Gauge* epoch_gauge_;
  obs::Gauge* pinned_gauge_;
  obs::Gauge* retired_gauge_;
};

}  // namespace serve
}  // namespace freshen

#endif  // FRESHEN_SERVE_STORE_H_
