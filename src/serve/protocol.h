// freshend wire protocol: newline-delimited requests, one single-line JSON
// object per response. Pure functions — the socket server (serve/server.h)
// is a thin transport around HandleRequestLine, so every command is unit
// testable without a socket.
//
// Query commands (case-insensitive verb, space-separated):
//   ISFRESH <id>   -> {"ok":true,"cmd":"isfresh","id":7,"epoch":42,
//                      "fresh":true,"p_fresh":0.9713,"elapsed":1.0}
//   AGE <id>       -> {"ok":true,"cmd":"age","id":7,"epoch":42,
//                      "expected_age":0.014,"elapsed":1.0}
//   PLAN <id>      -> {"ok":true,"cmd":"plan","id":7,"epoch":42,
//                      "frequency":2.0,"interval":0.5,"bandwidth_share":2.0}
//   STATS          -> {"ok":true,"cmd":"stats","epoch":...,"periods":...,
//                      "uptime_seconds":...,"build":{...},...}
//   PING           -> {"ok":true,"cmd":"ping"}
//   QUIT           -> {"ok":true,"cmd":"quit"} and the connection closes.
//
// Admin telemetry commands:
//   METRICS [json|prom] -> the full registry snapshot. json (default)
//                      embeds the exporter's JSON document as the "payload"
//                      field; prom carries the Prometheus text exposition
//                      as an escaped string.
//   HEALTH         -> one-line triage: {"ok":true,"cmd":"health",
//                      "status":"ok|degraded|critical",...} composed from
//                      the SLO state, server rejection/overflow counters,
//                      and flight-recorder drop counts — saturation is
//                      visible without a metrics scrape.
//   SLO            -> the SLO monitor's full report (windows, burn rates,
//                      budget) plus the drift detector's summary and top-k
//                      offenders.
//   SLOWLOG        -> retained slow queries, newest first.
//   WATCH <seconds> [count] -> streaming: the ack line is followed by one
//                      {"cmd":"watch_sample",...} line every <seconds>
//                      until <count> samples (0 or absent = unbounded),
//                      any client input, disconnect, or server stop; a
//                      final {"cmd":"watch_end",...} line closes the
//                      stream. The transport implements the pacing (see
//                      ProtocolResponse::watch_interval_seconds).
// Anything else   -> {"ok":false,"error":"..."} (connection stays open).
//
// Every request is timed into freshen_serve_command_seconds{cmd=...} and,
// when it crosses the daemon's slow-query threshold, into SLOWLOG.
#ifndef FRESHEN_SERVE_PROTOCOL_H_
#define FRESHEN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/daemon.h"

namespace freshen {
namespace serve {

/// One handled request.
struct ProtocolResponse {
  /// Single-line JSON payload (no trailing newline; the transport appends).
  std::string line;
  /// True when the client asked to end the connection (QUIT).
  bool close = false;
  /// When > 0 the response is a WATCH ack: the transport must follow it
  /// with FormatWatchSample lines at this cadence until watch_count
  /// samples, client input, disconnect, or server stop.
  double watch_interval_seconds = 0.0;
  /// Maximum watch samples (0 = until the client ends the watch).
  uint64_t watch_count = 0;
};

/// Parses one request line and answers it from `daemon`'s current snapshot.
/// Never throws; malformed input produces an {"ok":false,...} response.
ProtocolResponse HandleRequestLine(const FreshendDaemon& daemon,
                                   std::string_view line);

/// One WATCH stream sample: a single-line JSON object (no newline) with the
/// live serving/SLO/drift vitals. `seq` is the 1-based sample number.
std::string FormatWatchSample(const FreshendDaemon& daemon, uint64_t seq);

}  // namespace serve
}  // namespace freshen

#endif  // FRESHEN_SERVE_PROTOCOL_H_
