// freshend wire protocol: newline-delimited requests, one single-line JSON
// object per response. Pure functions — the socket server (serve/server.h)
// is a thin transport around HandleRequestLine, so every command is unit
// testable without a socket.
//
// Requests (case-insensitive verb, space-separated):
//   ISFRESH <id>   -> {"ok":true,"cmd":"isfresh","id":7,"epoch":42,
//                      "fresh":true,"p_fresh":0.9713,"elapsed":1.0}
//   AGE <id>       -> {"ok":true,"cmd":"age","id":7,"epoch":42,
//                      "expected_age":0.014,"elapsed":1.0}
//   PLAN <id>      -> {"ok":true,"cmd":"plan","id":7,"epoch":42,
//                      "frequency":2.0,"interval":0.5,"bandwidth_share":2.0}
//   STATS          -> {"ok":true,"cmd":"stats","epoch":...,"periods":...,...}
//   PING           -> {"ok":true,"cmd":"ping"}
//   QUIT           -> {"ok":true,"cmd":"quit"} and the connection closes.
// Anything else   -> {"ok":false,"error":"..."} (connection stays open).
#ifndef FRESHEN_SERVE_PROTOCOL_H_
#define FRESHEN_SERVE_PROTOCOL_H_

#include <string>
#include <string_view>

#include "serve/daemon.h"

namespace freshen {
namespace serve {

/// One handled request.
struct ProtocolResponse {
  /// Single-line JSON payload (no trailing newline; the transport appends).
  std::string line;
  /// True when the client asked to end the connection (QUIT).
  bool close = false;
};

/// Parses one request line and answers it from `daemon`'s current snapshot.
/// Never throws; malformed input produces an {"ok":false,...} response.
ProtocolResponse HandleRequestLine(const FreshendDaemon& daemon,
                                   std::string_view line);

}  // namespace serve
}  // namespace freshen

#endif  // FRESHEN_SERVE_PROTOCOL_H_
