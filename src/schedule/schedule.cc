#include "schedule/schedule.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "stats/descriptive.h"

namespace freshen {

Result<SyncSchedule> SyncSchedule::FixedOrder(
    const std::vector<double>& frequencies, double horizon) {
  if (!(horizon >= 0.0) || !std::isfinite(horizon)) {
    return Status::InvalidArgument(
        StrFormat("horizon must be non-negative and finite, got %g", horizon));
  }
  const size_t n = frequencies.size();
  SyncSchedule schedule;
  size_t total_events = 0;
  for (size_t i = 0; i < n; ++i) {
    const double f = frequencies[i];
    if (!(f >= 0.0) || !std::isfinite(f)) {
      return Status::InvalidArgument(
          StrFormat("frequency %zu is negative or non-finite", i));
    }
    total_events += static_cast<size_t>(f * horizon) + 1;
  }
  schedule.events_.reserve(total_events);
  for (size_t i = 0; i < n; ++i) {
    ForEachFixedOrderSyncTime(i, n, frequencies[i], horizon, [&](double t) {
      schedule.events_.push_back(SyncEvent{t, i});
    });
  }
  std::sort(schedule.events_.begin(), schedule.events_.end(),
            [](const SyncEvent& a, const SyncEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.element < b.element;
            });
  return schedule;
}

Result<SyncSchedule> SyncSchedule::PoissonOrder(
    const std::vector<double>& frequencies, double horizon, uint64_t seed) {
  if (!(horizon >= 0.0) || !std::isfinite(horizon)) {
    return Status::InvalidArgument(
        StrFormat("horizon must be non-negative and finite, got %g", horizon));
  }
  SyncSchedule schedule;
  Rng root(seed);
  for (size_t i = 0; i < frequencies.size(); ++i) {
    const double f = frequencies[i];
    if (!(f >= 0.0) || !std::isfinite(f)) {
      return Status::InvalidArgument(
          StrFormat("frequency %zu is negative or non-finite", i));
    }
    Rng rng = root.Fork();
    ForEachPoissonSyncTime(f, horizon, rng, [&](double t) {
      schedule.events_.push_back(SyncEvent{t, i});
    });
  }
  std::sort(schedule.events_.begin(), schedule.events_.end(),
            [](const SyncEvent& a, const SyncEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.element < b.element;
            });
  return schedule;
}

double SyncSchedule::BandwidthPerPeriod(const ElementSet& elements,
                                        double horizon) const {
  if (horizon <= 0.0) return 0.0;
  KahanSum total;
  for (const SyncEvent& event : events_) {
    total.Add(elements[event.element].size);
  }
  return total.Total() / horizon;
}

}  // namespace freshen
