// Materialized synchronization schedules. The planner produces *frequencies*;
// the mirror site executes a concrete timeline of sync operations. Under the
// Fixed Order policy each element is refreshed at a fixed interval 1/f_i,
// with deterministic phase staggering so the instantaneous load stays near
// the average (all elements repeatedly synced in the same order — the
// policy [5] found best).
#ifndef FRESHEN_SCHEDULE_SCHEDULE_H_
#define FRESHEN_SCHEDULE_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "model/element.h"
#include "rng/distributions.h"
#include "rng/rng.h"

namespace freshen {

/// Calls emit(t) for every fixed-order sync instant of `element` over
/// [0, horizon): t = (k + element/num_elements) / frequency for k = 0, 1, ….
/// No-op for frequency <= 0. This is THE fixed-order timeline — the sharded
/// simulator generates per-element timelines with the same function that
/// SyncSchedule::FixedOrder materializes, so the two can never drift.
template <typename Emit>
void ForEachFixedOrderSyncTime(size_t element, size_t num_elements,
                               double frequency, double horizon, Emit&& emit) {
  if (frequency <= 0.0) return;
  const double interval = 1.0 / frequency;
  // Deterministic phase stagger in [0, 1): spreads the first syncs of
  // equal-frequency elements across their interval.
  const double phase =
      num_elements > 0
          ? static_cast<double>(element) / static_cast<double>(num_elements)
          : 0.0;
  for (double t = phase * interval; t < horizon; t += interval) emit(t);
}

/// Calls emit(t) for every Poisson-scheduled sync instant over [0, horizon):
/// exponential gaps of rate `frequency` drawn from `rng`. No-op for
/// frequency <= 0 (the rng is left untouched, matching PoissonOrder's
/// fork-then-skip behaviour).
template <typename Emit>
void ForEachPoissonSyncTime(double frequency, double horizon, Rng& rng,
                            Emit&& emit) {
  if (frequency <= 0.0) return;
  for (double t = SampleExponential(rng, frequency); t < horizon;
       t += SampleExponential(rng, frequency)) {
    emit(t);
  }
}

/// One sync operation: refresh `element` at `time` (period units).
struct SyncEvent {
  double time = 0.0;
  size_t element = 0;

  friend bool operator==(const SyncEvent& a, const SyncEvent& b) = default;
};

/// A time-sorted sequence of sync operations over [0, horizon).
class SyncSchedule {
 public:
  /// Builds the fixed-order timeline for `frequencies` (per period) over
  /// `horizon` periods. Element i fires at (k + phase_i) / f_i for k = 0,1,…
  /// with phase_i = i / N staggering. Frequencies must be >= 0 and finite;
  /// zero-frequency elements never appear. Fails on negative horizon or
  /// malformed frequencies.
  static Result<SyncSchedule> FixedOrder(const std::vector<double>& frequencies,
                                         double horizon);

  /// Builds a memoryless timeline: element i's sync instants form a Poisson
  /// process of rate f_i (exponential gaps), deterministic in `seed`. This
  /// is the "purely random" policy of [5], kept for the policy ablation —
  /// it wastes bandwidth on clustered syncs and FixedOrder dominates it.
  static Result<SyncSchedule> PoissonOrder(
      const std::vector<double>& frequencies, double horizon, uint64_t seed);

  /// All events, sorted by time (ties broken by element id).
  const std::vector<SyncEvent>& events() const { return events_; }

  /// Number of sync operations scheduled.
  size_t size() const { return events_.size(); }

  /// Total bandwidth the schedule consumes given element sizes, divided by
  /// the horizon — i.e. average bandwidth per period.
  double BandwidthPerPeriod(const ElementSet& elements, double horizon) const;

 private:
  std::vector<SyncEvent> events_;
};

}  // namespace freshen

#endif  // FRESHEN_SCHEDULE_SCHEDULE_H_
