// Materialized synchronization schedules. The planner produces *frequencies*;
// the mirror site executes a concrete timeline of sync operations. Under the
// Fixed Order policy each element is refreshed at a fixed interval 1/f_i,
// with deterministic phase staggering so the instantaneous load stays near
// the average (all elements repeatedly synced in the same order — the
// policy [5] found best).
#ifndef FRESHEN_SCHEDULE_SCHEDULE_H_
#define FRESHEN_SCHEDULE_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "model/element.h"

namespace freshen {

/// One sync operation: refresh `element` at `time` (period units).
struct SyncEvent {
  double time = 0.0;
  size_t element = 0;

  friend bool operator==(const SyncEvent& a, const SyncEvent& b) = default;
};

/// A time-sorted sequence of sync operations over [0, horizon).
class SyncSchedule {
 public:
  /// Builds the fixed-order timeline for `frequencies` (per period) over
  /// `horizon` periods. Element i fires at (k + phase_i) / f_i for k = 0,1,…
  /// with phase_i = i / N staggering. Frequencies must be >= 0 and finite;
  /// zero-frequency elements never appear. Fails on negative horizon or
  /// malformed frequencies.
  static Result<SyncSchedule> FixedOrder(const std::vector<double>& frequencies,
                                         double horizon);

  /// Builds a memoryless timeline: element i's sync instants form a Poisson
  /// process of rate f_i (exponential gaps), deterministic in `seed`. This
  /// is the "purely random" policy of [5], kept for the policy ablation —
  /// it wastes bandwidth on clustered syncs and FixedOrder dominates it.
  static Result<SyncSchedule> PoissonOrder(
      const std::vector<double>& frequencies, double horizon, uint64_t seed);

  /// All events, sorted by time (ties broken by element id).
  const std::vector<SyncEvent>& events() const { return events_; }

  /// Number of sync operations scheduled.
  size_t size() const { return events_.size(); }

  /// Total bandwidth the schedule consumes given element sizes, divided by
  /// the horizon — i.e. average bandwidth per period.
  double BandwidthPerPeriod(const ElementSet& elements, double horizon) const;

 private:
  std::vector<SyncEvent> events_;
};

}  // namespace freshen

#endif  // FRESHEN_SCHEDULE_SCHEDULE_H_
