#include "partition/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "model/freshness.h"
#include "stats/descriptive.h"

namespace freshen {

std::string ToString(PartitionKey key) {
  switch (key) {
    case PartitionKey::kAccessProb:
      return "P_PARTITIONING";
    case PartitionKey::kChangeRate:
      return "LAMBDA_PARTITIONING";
    case PartitionKey::kProbOverLambda:
      return "P_OVER_LAMBDA_PARTITIONING";
    case PartitionKey::kPerceivedFreshness:
      return "PF_PARTITIONING";
    case PartitionKey::kPerceivedFreshnessSize:
      return "PF_OVER_S_PARTITIONING";
    case PartitionKey::kSize:
      return "SIZE_PARTITIONING";
  }
  return "UNKNOWN_PARTITIONING";
}

double PartitionSortKey(PartitionKey key, const Element& element) {
  switch (key) {
    case PartitionKey::kAccessProb:
      return element.access_prob;
    case PartitionKey::kChangeRate:
      return element.change_rate;
    case PartitionKey::kProbOverLambda:
      // Guard lambda = 0: such an element is maximally attractive per unit
      // of bandwidth "cost"; an infinite key simply sorts it to the edge.
      return element.change_rate > 0.0
                 ? element.access_prob / element.change_rate
                 : (element.access_prob > 0.0 ? 1e308 : 0.0);
    case PartitionKey::kPerceivedFreshness:
      return element.access_prob *
             FixedOrderFreshness(kPfKeyFrequency, element.change_rate);
    case PartitionKey::kPerceivedFreshnessSize:
      // One unit of bandwidth buys only 1/s syncs of an object of size s.
      FRESHEN_DCHECK(element.size > 0.0);
      return element.access_prob *
             FixedOrderFreshness(kPfKeyFrequency / element.size,
                                 element.change_rate);
    case PartitionKey::kSize:
      return element.size;
  }
  return 0.0;
}

void RecomputeRepresentative(const ElementSet& elements,
                             Partition& partition) {
  FRESHEN_CHECK(!partition.members.empty());
  KahanSum p_sum;
  KahanSum l_sum;
  KahanSum s_sum;
  for (size_t i : partition.members) {
    p_sum.Add(elements[i].access_prob);
    l_sum.Add(elements[i].change_rate);
    s_sum.Add(elements[i].size);
  }
  const double inv = 1.0 / static_cast<double>(partition.members.size());
  partition.rep_access_prob = p_sum.Total() * inv;
  partition.rep_change_rate = l_sum.Total() * inv;
  partition.rep_size = s_sum.Total() * inv;
}

Result<std::vector<Partition>> BuildPartitions(const ElementSet& elements,
                                               PartitionKey key,
                                               size_t num_partitions) {
  if (elements.empty()) {
    return Status::InvalidArgument("cannot partition an empty element set");
  }
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  const size_t n = elements.size();
  const size_t k = std::min(num_partitions, n);

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = PartitionSortKey(key, elements[i]);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return keys[a] < keys[b]; });

  // Cut into k contiguous runs; the first (n % k) runs get one extra member
  // so sizes differ by at most one.
  std::vector<Partition> partitions(k);
  const size_t base = n / k;
  const size_t extra = n % k;
  size_t cursor = 0;
  for (size_t j = 0; j < k; ++j) {
    const size_t count = base + (j < extra ? 1 : 0);
    partitions[j].members.assign(order.begin() + cursor,
                                 order.begin() + cursor + count);
    cursor += count;
    RecomputeRepresentative(elements, partitions[j]);
  }
  FRESHEN_CHECK(cursor == n);
  return partitions;
}

}  // namespace freshen
