#include "partition/kmeans.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace freshen {
namespace {

// Registered once; updated lock-free per Refine call.
struct KMeansMetrics {
  obs::Counter* refines;
  obs::Counter* rounds_total;
  obs::Histogram* rounds;
  obs::Gauge* centroid_movement;
};

const KMeansMetrics& GetKMeansMetrics() {
  static const KMeansMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return KMeansMetrics{
        registry.GetCounter("freshen_partition_kmeans_refines_total"),
        registry.GetCounter("freshen_partition_kmeans_rounds_total"),
        registry.GetHistogram("freshen_partition_kmeans_rounds",
                              obs::IterationCountBuckets()),
        registry.GetGauge("freshen_partition_kmeans_centroid_movement")};
  }();
  return metrics;
}

}  // namespace

KMeansRefiner::KMeansRefiner(const ElementSet& elements, Options options)
    : elements_(elements), threads_(par::Executor(options.threads).threads()) {
  const size_t n = elements.size();
  px_.resize(n);
  lx_.resize(n);
  double max_l = 0.0;
  double sum_l = 0.0;
  for (size_t i = 0; i < n; ++i) {
    max_l = std::max(max_l, elements[i].change_rate);
    sum_l += elements[i].change_rate;
  }
  double l_scale = 1.0;
  switch (options.lambda_normalization) {
    case LambdaNormalization::kSumToOne:
      if (sum_l > 0.0) l_scale = 1.0 / sum_l;
      break;
    case LambdaNormalization::kMaxToOne:
      if (max_l > 0.0) l_scale = 1.0 / max_l;
      break;
    case LambdaNormalization::kNone:
      break;
  }
  for (size_t i = 0; i < n; ++i) {
    px_[i] = elements[i].access_prob;
    lx_[i] = elements[i].change_rate * l_scale;
  }
}

Result<std::vector<Partition>> KMeansRefiner::Refine(
    const std::vector<Partition>& initial, int iterations) const {
  if (initial.empty()) {
    return Status::InvalidArgument("no initial partitions");
  }
  if (iterations < 0) {
    return Status::InvalidArgument("iterations must be >= 0");
  }
  obs::ScopedSpan span("kmeans_refine");
  const size_t n = elements_.size();

  // Current assignment: element -> cluster.
  std::vector<uint32_t> assignment(n, UINT32_MAX);
  for (size_t j = 0; j < initial.size(); ++j) {
    for (size_t i : initial[j].members) {
      if (i >= n || assignment[i] != UINT32_MAX) {
        return Status::InvalidArgument(StrFormat(
            "partition %zu member %zu out of range or duplicated", j, i));
      }
      assignment[i] = static_cast<uint32_t>(j);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (assignment[i] == UINT32_MAX) {
      return Status::InvalidArgument(
          StrFormat("element %zu belongs to no partition", i));
    }
  }

  size_t k = initial.size();
  std::vector<double> cx(k), cy(k);
  std::vector<size_t> counts(k);

  // Returns the total Euclidean distance the surviving centroids moved.
  auto recompute_centroids = [&]() -> double {
    const std::vector<double> old_cx = cx;
    const std::vector<double> old_cy = cy;
    double movement = 0.0;
    std::fill(cx.begin(), cx.end(), 0.0);
    std::fill(cy.begin(), cy.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t j = assignment[i];
      cx[j] += px_[i];
      cy[j] += lx_[i];
      ++counts[j];
    }
    // Drop empty clusters by compacting ids.
    std::vector<uint32_t> remap(k, UINT32_MAX);
    size_t next = 0;
    for (size_t j = 0; j < k; ++j) {
      if (counts[j] == 0) continue;
      remap[j] = static_cast<uint32_t>(next);
      cx[next] = cx[j] / static_cast<double>(counts[j]);
      cy[next] = cy[j] / static_cast<double>(counts[j]);
      counts[next] = counts[j];
      movement += std::sqrt((cx[next] - old_cx[j]) * (cx[next] - old_cx[j]) +
                            (cy[next] - old_cy[j]) * (cy[next] - old_cy[j]));
      ++next;
    }
    if (next != k) {
      for (size_t i = 0; i < n; ++i) assignment[i] = remap[assignment[i]];
      k = next;
      cx.resize(k);
      cy.resize(k);
      counts.resize(k);
    }
    return movement;
  };

  recompute_centroids();  // Initial centroids; movement is meaningless here.
  const par::Executor exec(threads_);
  const std::vector<par::Shard> plan = par::ShardPlan(n);
  std::vector<uint8_t> shard_moved(plan.size(), 0);
  int rounds = 0;
  double total_movement = 0.0;
  for (int iter = 0; iter < iterations; ++iter) {
    // Assignment step, sharded: each element's nearest centroid depends
    // only on the (read-only) centroids, and every write lands in the
    // element's own slot — bit-identical at any thread count.
    std::fill(shard_moved.begin(), shard_moved.end(), 0);
    exec.ForShards(plan, [&](const par::Shard& shard) {
      bool moved_here = false;
      for (size_t i = shard.begin; i < shard.end; ++i) {
        const double x = px_[i];
        const double y = lx_[i];
        uint32_t best = assignment[i];
        double best_d2 = (x - cx[best]) * (x - cx[best]) +
                         (y - cy[best]) * (y - cy[best]);
        for (uint32_t j = 0; j < k; ++j) {
          const double dx = x - cx[j];
          const double dy = y - cy[j];
          const double d2 = dx * dx + dy * dy;
          if (d2 < best_d2) {
            best_d2 = d2;
            best = j;
          }
        }
        if (best != assignment[i]) {
          assignment[i] = best;
          moved_here = true;
        }
      }
      if (moved_here) shard_moved[shard.index] = 1;
    });
    bool moved = false;
    for (uint8_t flag : shard_moved) moved |= flag != 0;
    total_movement += recompute_centroids();
    ++rounds;
    if (!moved) break;  // Converged.
  }
  const KMeansMetrics& metrics = GetKMeansMetrics();
  metrics.refines->Increment();
  metrics.rounds_total->Add(static_cast<double>(rounds));
  metrics.rounds->Record(static_cast<double>(rounds));
  metrics.centroid_movement->Set(total_movement);

  std::vector<Partition> refined(k);
  for (size_t i = 0; i < n; ++i) refined[assignment[i]].members.push_back(i);
  for (Partition& part : refined) {
    RecomputeRepresentative(elements_, part);
  }
  return refined;
}

double KMeansRefiner::Distortion(
    const std::vector<Partition>& partitions) const {
  double total = 0.0;
  for (const Partition& part : partitions) {
    if (part.members.empty()) continue;
    double mx = 0.0;
    double my = 0.0;
    for (size_t i : part.members) {
      mx += px_[i];
      my += lx_[i];
    }
    mx /= static_cast<double>(part.members.size());
    my /= static_cast<double>(part.members.size());
    for (size_t i : part.members) {
      const double dx = px_[i] - mx;
      const double dy = lx_[i] - my;
      total += dx * dx + dy * dy;
    }
  }
  return total;
}

}  // namespace freshen
