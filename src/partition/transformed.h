// Step 2 of the scaling heuristics (§3.2): the Transformed Problem. Each
// partition j with n_j members is treated as n_j identical copies of its
// representative, so the K-variable problem
//
//   maximize   sum_j  n_j * p_j * F(f_j, l_j)
//   subject to sum_j  n_j * s_j * f_j = B
//
// is a Core Problem with weights n_j p_j and costs n_j s_j.
#ifndef FRESHEN_PARTITION_TRANSFORMED_H_
#define FRESHEN_PARTITION_TRANSFORMED_H_

#include <vector>

#include "opt/problem.h"
#include "partition/partitioner.h"

namespace freshen {

/// Builds the K-variable transformed Core Problem from partitions.
/// `size_aware` selects the §5 constraint (costs scaled by mean size).
CoreProblem BuildTransformedProblem(const std::vector<Partition>& partitions,
                                    double bandwidth, bool size_aware);

}  // namespace freshen

#endif  // FRESHEN_PARTITION_TRANSFORMED_H_
