// Expanding a per-partition solution back to per-element synchronization
// frequencies. With equal sizes the two policies coincide; with variable
// sizes they differ (§5.3):
//
//   FFA (Fixed Frequency Allocation): every member of partition j gets the
//       partition's frequency f_j. Simple, but large members then consume a
//       disproportionate share of bandwidth.
//   FBA (Fixed Bandwidth Allocation): every member gets the same *bandwidth*
//       b_j = s̄_j * f_j, hence frequency b_j / s_i — smaller objects are
//       refreshed more often. The paper shows FBA always beats FFA.
#ifndef FRESHEN_PARTITION_ALLOCATION_H_
#define FRESHEN_PARTITION_ALLOCATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/element.h"
#include "partition/partitioner.h"

namespace freshen {

/// Intra-partition bandwidth allocation policies (§5.3).
enum class AllocationPolicy {
  kFixedFrequency,  // FFA.
  kFixedBandwidth,  // FBA.
};

/// Returns "FFA" or "FBA".
std::string ToString(AllocationPolicy policy);

/// Expands per-partition frequencies to per-element frequencies.
/// `partition_frequencies` must have one entry per partition. Both policies
/// preserve each partition's total bandwidth n_j * s̄_j * f_j exactly; they
/// differ in how that bandwidth splits across members of unequal size (FFA
/// lets big objects eat a disproportionate share, FBA equalizes it).
Result<std::vector<double>> ExpandAllocation(
    const ElementSet& elements, const std::vector<Partition>& partitions,
    const std::vector<double>& partition_frequencies,
    AllocationPolicy policy);

}  // namespace freshen

#endif  // FRESHEN_PARTITION_ALLOCATION_H_
