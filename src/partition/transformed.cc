#include "partition/transformed.h"

#include "common/macros.h"

namespace freshen {

CoreProblem BuildTransformedProblem(const std::vector<Partition>& partitions,
                                    double bandwidth, bool size_aware) {
  CoreProblem problem;
  const size_t k = partitions.size();
  problem.weights.resize(k);
  problem.change_rates.resize(k);
  problem.costs.resize(k);
  problem.bandwidth = bandwidth;
  for (size_t j = 0; j < k; ++j) {
    const auto& part = partitions[j];
    FRESHEN_CHECK(!part.members.empty());
    const double count = static_cast<double>(part.members.size());
    problem.weights[j] = count * part.rep_access_prob;
    problem.change_rates[j] = part.rep_change_rate;
    problem.costs[j] = count * (size_aware ? part.rep_size : 1.0);
  }
  return problem;
}

}  // namespace freshen
