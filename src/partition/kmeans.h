// k-Means refinement of an initial partitioning (§4.1.3, "An Additional
// Improvement"). Elements are points (p_i, l̂_i) where l̂ is the change rate
// normalized into [0, 1]; the distance is Euclidean (the paper's Equation 3).
// Starting from the sort-based partitions, a few Lloyd iterations "clean up"
// clustering problems and were the paper's most surprising win.
#ifndef FRESHEN_PARTITION_KMEANS_H_
#define FRESHEN_PARTITION_KMEANS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "model/element.h"
#include "partition/partitioner.h"

namespace freshen {

/// How the change-rate coordinate is scaled before computing distances.
enum class LambdaNormalization {
  /// Divide by sum(lambda) so the coordinates sum to 1 — commensurate with
  /// the access probabilities, which also sum to 1. This is footnote 6 of
  /// the paper ("the lambda-hats are normalized so that sum = 1") and the
  /// default.
  kSumToOne,
  /// Divide by max(lambda), mapping into [0, 1]. With a skewed profile this
  /// makes the lambda axis dominate the distance (ablation A5 measures the
  /// damage).
  kMaxToOne,
  /// Use raw rates.
  kNone,
};

/// Lloyd's algorithm over (p, normalized-lambda) points.
class KMeansRefiner {
 public:
  struct Options {
    /// Change-rate scaling (see LambdaNormalization).
    LambdaNormalization lambda_normalization = LambdaNormalization::kSumToOne;
    /// Worker threads for the assignment step (0 = hardware concurrency).
    /// Purely an execution knob: each element's nearest-centroid choice is
    /// independent, so the refinement is bit-identical at every thread
    /// count (see common/parallel.h).
    size_t threads = 0;
  };

  /// Prepares the point set once; Refine() can then be called repeatedly.
  KMeansRefiner(const ElementSet& elements, Options options);

  /// Runs `iterations` Lloyd steps starting from `partitions` (each element
  /// assigned to its partition; centroids are the representatives'
  /// (p, l̂)). Empty clusters are dropped. Returns the refined partitions
  /// with recomputed representatives.
  Result<std::vector<Partition>> Refine(const std::vector<Partition>& initial,
                                        int iterations) const;

  /// Sum of squared distances of every element to its cluster centroid —
  /// the quantity Lloyd iterations never increase (tested invariant).
  double Distortion(const std::vector<Partition>& partitions) const;

 private:
  const ElementSet& elements_;
  size_t threads_;          // Assignment-step parallelism (resolved, >= 1).
  std::vector<double> px_;  // Access-prob coordinate per element.
  std::vector<double> lx_;  // (Normalized) change-rate coordinate.
};

}  // namespace freshen

#endif  // FRESHEN_PARTITION_KMEANS_H_
