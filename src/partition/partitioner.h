// The paper's §3 scaling heuristics, step 1: divide the N elements into K
// partitions of similar elements, so the optimization runs over K
// representatives instead of N variables.
//
// All sort-based techniques work the same way: sort all elements by a key,
// then cut the sorted order into K contiguous runs of ~N/K elements. The
// paper defines four keys (§3.1) plus two size-aware ones (§5.2):
//   P     : access probability p
//   LAMBDA: change rate lambda
//   P/L   : p / lambda
//   PF    : perceived freshness p * F(f0, lambda) at a fixed frequency f0=1
//   PF/S  : p * F(f0 / s, lambda) — PF with the fixed bandwidth spread over
//           the object's size (§5.2, "PF/s-Partitioning")
//   SIZE  : object size s (§5.3 mentions ordering by size for completeness)
#ifndef FRESHEN_PARTITION_PARTITIONER_H_
#define FRESHEN_PARTITION_PARTITIONER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/element.h"

namespace freshen {

/// Sorting keys for the partitioning techniques.
enum class PartitionKey {
  kAccessProb,             // P-Partitioning.
  kChangeRate,             // Lambda-Partitioning.
  kProbOverLambda,         // P/Lambda-Partitioning.
  kPerceivedFreshness,     // PF-Partitioning.
  kPerceivedFreshnessSize, // PF/s-Partitioning (variable sizes).
  kSize,                   // Size-Partitioning.
};

/// Short display name, e.g. "PF_PARTITIONING".
std::string ToString(PartitionKey key);

/// The fixed synchronization frequency used inside the PF sorting key. The
/// paper: "The exact synchronization frequency used in our calculations is
/// not important. We use a synchronization frequency of 1.0."
inline constexpr double kPfKeyFrequency = 1.0;

/// A group of similar elements plus its representative (§3.2): the
/// representative's p and lambda are the means over members; mean size is
/// kept for the size-aware constraint.
struct Partition {
  /// Member element indices (into the original ElementSet).
  std::vector<size_t> members;
  /// Representative access probability (mean of members').
  double rep_access_prob = 0.0;
  /// Representative change rate (mean of members').
  double rep_change_rate = 0.0;
  /// Representative size (mean of members').
  double rep_size = 1.0;
};

/// Computes the sort key of one element.
double PartitionSortKey(PartitionKey key, const Element& element);

/// Sorts elements by `key` and cuts them into `num_partitions` contiguous
/// groups of near-equal size ("All elements are sorted. Then N/K successive
/// elements are assigned to a partition."). num_partitions is clamped to N.
/// Fails when elements is empty or num_partitions is 0. Representatives are
/// filled in.
Result<std::vector<Partition>> BuildPartitions(const ElementSet& elements,
                                               PartitionKey key,
                                               size_t num_partitions);

/// Recomputes a partition's representative from its members (used after
/// k-means moves elements around).
void RecomputeRepresentative(const ElementSet& elements, Partition& partition);

}  // namespace freshen

#endif  // FRESHEN_PARTITION_PARTITIONER_H_
