#include "partition/allocation.h"

#include "common/string_util.h"

namespace freshen {

std::string ToString(AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kFixedFrequency:
      return "FFA";
    case AllocationPolicy::kFixedBandwidth:
      return "FBA";
  }
  return "UNKNOWN";
}

Result<std::vector<double>> ExpandAllocation(
    const ElementSet& elements, const std::vector<Partition>& partitions,
    const std::vector<double>& partition_frequencies,
    AllocationPolicy policy) {
  if (partition_frequencies.size() != partitions.size()) {
    return Status::InvalidArgument(
        StrFormat("got %zu partition frequencies for %zu partitions",
                  partition_frequencies.size(), partitions.size()));
  }
  std::vector<double> frequencies(elements.size(), 0.0);
  std::vector<bool> seen(elements.size(), false);
  for (size_t j = 0; j < partitions.size(); ++j) {
    const Partition& part = partitions[j];
    const double f_j = partition_frequencies[j];
    if (!(f_j >= 0.0)) {
      return Status::InvalidArgument(
          StrFormat("partition %zu frequency is negative", j));
    }
    // Bandwidth assigned to each member under FBA: the representative's
    // per-element spend s̄_j * f_j.
    const double member_bandwidth = part.rep_size * f_j;
    for (size_t i : part.members) {
      if (i >= elements.size() || seen[i]) {
        return Status::InvalidArgument(StrFormat(
            "partition %zu member %zu is out of range or duplicated", j, i));
      }
      seen[i] = true;
      switch (policy) {
        case AllocationPolicy::kFixedFrequency:
          frequencies[i] = f_j;
          break;
        case AllocationPolicy::kFixedBandwidth:
          if (elements[i].size <= 0.0) {
            return Status::InvalidArgument(
                StrFormat("element %zu has non-positive size", i));
          }
          frequencies[i] = member_bandwidth / elements[i].size;
          break;
      }
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return Status::InvalidArgument(
          StrFormat("element %zu belongs to no partition", i));
    }
  }
  return frequencies;
}

}  // namespace freshen
