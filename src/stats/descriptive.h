// Descriptive statistics used by workload validation, tests, and the
// freshness evaluator's reporting.
#ifndef FRESHEN_STATS_DESCRIPTIVE_H_
#define FRESHEN_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace freshen {

/// Kahan-compensated accumulator. Use when summing many small contributions
/// (e.g. per-access freshness scores over millions of events).
class KahanSum {
 public:
  /// Adds one term.
  void Add(double value);

  /// The compensated total so far.
  double Total() const { return sum_; }

  /// Number of terms added.
  size_t Count() const { return count_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
  size_t count_ = 0;
};

/// Streaming mean/variance (Welford). Numerically stable for long runs.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double value);

  /// Number of observations.
  size_t Count() const { return count_; }
  /// Sample mean (0 when empty).
  double Mean() const { return mean_; }
  /// Unbiased sample variance (0 with fewer than two observations).
  double Variance() const;
  /// Square root of Variance().
  double StdDev() const;
  /// Smallest observation (+inf when empty).
  double Min() const { return min_; }
  /// Largest observation (-inf when empty).
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e308;
  double max_ = -1e308;
};

/// Sum of a vector with compensation.
double Sum(const std::vector<double>& values);

/// Arithmetic mean (0 for an empty vector).
double Mean(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1]. Copies and sorts internally.
double Quantile(std::vector<double> values, double q);

}  // namespace freshen

#endif  // FRESHEN_STATS_DESCRIPTIVE_H_
