// Fixed-width histogram, used by distribution tests (goodness of fit) and by
// the simulator's staleness reporting.
#ifndef FRESHEN_STATS_HISTOGRAM_H_
#define FRESHEN_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace freshen {

/// Equal-width bins over [lo, hi); out-of-range observations land in
/// saturating under/overflow bins.
class Histogram {
 public:
  /// Creates `num_bins` equal bins covering [lo, hi). Requires lo < hi and
  /// num_bins > 0.
  Histogram(double lo, double hi, size_t num_bins);

  /// Records one observation.
  void Add(double value);

  /// Count in bin `i` (0-based, excludes under/overflow).
  uint64_t BinCount(size_t i) const { return bins_[i]; }
  /// Observations below `lo`.
  uint64_t Underflow() const { return underflow_; }
  /// Observations at or above `hi`.
  uint64_t Overflow() const { return overflow_; }
  /// Total observations recorded, including under/overflow.
  uint64_t TotalCount() const { return total_; }
  /// Number of in-range bins.
  size_t NumBins() const { return bins_.size(); }
  /// Lower edge of bin `i`.
  double BinLow(size_t i) const;

  /// Pearson chi-square statistic against expected probabilities per bin
  /// (same length as NumBins(), need not be normalized). Bins whose expected
  /// count is < 1e-9 are skipped.
  double ChiSquare(const std::vector<double>& expected_probs) const;

  /// Multi-line "edge count" text rendering.
  std::string ToString() const;

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> bins_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace freshen

#endif  // FRESHEN_STATS_HISTOGRAM_H_
