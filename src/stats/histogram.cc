#include "stats/histogram.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace freshen {

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(num_bins)),
      bins_(num_bins, 0) {
  FRESHEN_CHECK(num_bins > 0);
  FRESHEN_CHECK(lo < hi);
}

void Histogram::Add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  const double offset = (value - lo_) / width_;
  if (offset >= static_cast<double>(bins_.size())) {
    ++overflow_;
    return;
  }
  ++bins_[static_cast<size_t>(offset)];
}

double Histogram::BinLow(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::ChiSquare(const std::vector<double>& expected_probs) const {
  FRESHEN_CHECK(expected_probs.size() == bins_.size());
  double prob_total = 0.0;
  for (double p : expected_probs) prob_total += p;
  FRESHEN_CHECK(prob_total > 0.0);
  const double n = static_cast<double>(total_ - underflow_ - overflow_);
  double chi2 = 0.0;
  for (size_t i = 0; i < bins_.size(); ++i) {
    const double expected = n * expected_probs[i] / prob_total;
    if (expected < 1e-9) continue;
    const double diff = static_cast<double>(bins_[i]) - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

std::string Histogram::ToString() const {
  std::string out;
  for (size_t i = 0; i < bins_.size(); ++i) {
    out += StrFormat("[%g, %g): %llu\n", BinLow(i), BinLow(i + 1),
                     static_cast<unsigned long long>(bins_[i]));
  }
  out += StrFormat("underflow: %llu overflow: %llu\n",
                   static_cast<unsigned long long>(underflow_),
                   static_cast<unsigned long long>(overflow_));
  return out;
}

}  // namespace freshen
