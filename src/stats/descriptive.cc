#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace freshen {

void KahanSum::Add(double value) {
  const double term = value - comp_;
  const double next = sum_ + term;
  comp_ = (next - sum_) - term;
  sum_ = next;
  ++count_;
}

void RunningStats::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double Sum(const std::vector<double>& values) {
  KahanSum acc;
  for (double v : values) acc.Add(v);
  return acc.Total();
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return Sum(values) / static_cast<double>(values.size());
}

double Quantile(std::vector<double> values, double q) {
  FRESHEN_CHECK(!values.empty());
  FRESHEN_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace freshen
