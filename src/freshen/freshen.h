// Umbrella header for libfreshen: everything a downstream application needs
// to plan, execute, and evaluate application-aware data freshening.
//
// Quick tour (see examples/quickstart.cc for runnable code):
//   1. Describe the mirror: an ElementSet of {change_rate, access_prob, size}
//      (build one by hand, from profiles via profile/…, or synthetically via
//      workload/generator.h).
//   2. Configure a FreshenPlanner (core/planner.h) — PF vs GF, exact vs
//      partitioned, size-aware or not — and call Plan().
//   3. Materialize the plan with SyncSchedule (schedule/schedule.h) or
//      evaluate it with MirrorSimulator (sim/simulator.h).
#ifndef FRESHEN_FRESHEN_FRESHEN_H_
#define FRESHEN_FRESHEN_FRESHEN_H_

#include "adaptive/adaptive_freshener.h"  // IWYU pragma: export
#include "common/logging.h"       // IWYU pragma: export
#include "common/result.h"        // IWYU pragma: export
#include "common/status.h"        // IWYU pragma: export
#include "core/planner.h"         // IWYU pragma: export
#include "estimate/change_estimator.h"  // IWYU pragma: export
#include "io/catalog_io.h"        // IWYU pragma: export
#include "mirror/mirror_state.h"  // IWYU pragma: export
#include "mirror/online_loop.h"   // IWYU pragma: export
#include "model/element.h"        // IWYU pragma: export
#include "model/freshness.h"      // IWYU pragma: export
#include "model/metrics.h"        // IWYU pragma: export
#include "obs/export.h"           // IWYU pragma: export
#include "obs/metrics.h"          // IWYU pragma: export
#include "obs/trace.h"            // IWYU pragma: export
#include "opt/age_water_filling.h"  // IWYU pragma: export
#include "opt/generic_nlp.h"      // IWYU pragma: export
#include "opt/grouped.h"          // IWYU pragma: export
#include "opt/kkt.h"              // IWYU pragma: export
#include "opt/problem.h"          // IWYU pragma: export
#include "opt/water_filling.h"    // IWYU pragma: export
#include "partition/allocation.h" // IWYU pragma: export
#include "partition/kmeans.h"     // IWYU pragma: export
#include "partition/partitioner.h"  // IWYU pragma: export
#include "profile/learner.h"      // IWYU pragma: export
#include "profile/profile.h"      // IWYU pragma: export
#include "rng/alias_table.h"      // IWYU pragma: export
#include "rng/distributions.h"    // IWYU pragma: export
#include "rng/rng.h"              // IWYU pragma: export
#include "rng/zipf.h"             // IWYU pragma: export
#include "schedule/schedule.h"    // IWYU pragma: export
#include "selection/selection.h"  // IWYU pragma: export
#include "sim/simulator.h"        // IWYU pragma: export
#include "sync/circuit_breaker.h"  // IWYU pragma: export
#include "sync/executor.h"        // IWYU pragma: export
#include "sync/retry.h"           // IWYU pragma: export
#include "sync/source.h"          // IWYU pragma: export
#include "workload/generator.h"   // IWYU pragma: export
#include "workload/spec.h"        // IWYU pragma: export

#endif  // FRESHEN_FRESHEN_FRESHEN_H_
