// FreshenPlanner: the library's main entry point. Given a catalog of
// elements (change rates, master-profile access probabilities, sizes) and a
// bandwidth budget, it produces a synchronization-frequency plan using any
// combination the paper studies:
//
//   technique  : Perceived Freshening (PF, the paper) or General Freshening
//                (GF, the prior-work baseline from [5])
//   mode       : exact KKT solve over all N elements, or the scalable
//                partition -> (optional k-means) -> solve -> expand pipeline
//   size model : size-blind (§2) or size-aware (§5) constraint, with FFA or
//                FBA intra-partition allocation
//
// Whatever the optimization mode, the returned plan is always feasible with
// respect to the *actual* object sizes: frequencies are proportionally
// rescaled so sum_i s_i f_i = B. (For equal sizes this is a no-op; for the
// paper's "ignore object size" configuration it is exactly the fairness
// normalization Figure 10's comparison requires.)
#ifndef FRESHEN_CORE_PLANNER_H_
#define FRESHEN_CORE_PLANNER_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "model/element.h"
#include "opt/water_filling.h"
#include "partition/allocation.h"
#include "partition/kmeans.h"
#include "partition/partitioner.h"

namespace freshen {

/// Whose freshness the objective maximizes.
enum class Technique {
  /// Perceived Freshening: weight each element by its access probability.
  kPerceived,
  /// General Freshening: uniform weights (Cho & Garcia-Molina baseline).
  kGeneral,
};

/// Returns "PF_TECHNIQUE" / "GF_TECHNIQUE" (the paper's legend labels).
std::string ToString(Technique technique);

/// Whether to solve over all elements or over partition representatives.
enum class PlanMode {
  kExact,
  kPartitioned,
};

/// Everything configurable about a planning run.
struct PlannerOptions {
  Technique technique = Technique::kPerceived;
  PlanMode mode = PlanMode::kExact;
  /// Partitioned mode: sorting key for the initial partitions.
  PartitionKey partition_key = PartitionKey::kPerceivedFreshness;
  /// Partitioned mode: number of partitions K.
  size_t num_partitions = 50;
  /// Partitioned mode: Lloyd iterations refining the partitions (0 = none).
  int kmeans_iterations = 0;
  /// Options for the k-means refiner.
  KMeansRefiner::Options kmeans_options;
  /// Partitioned mode: intra-partition allocation policy.
  AllocationPolicy allocation_policy = AllocationPolicy::kFixedBandwidth;
  /// Use the §5 size-aware constraint (sum s_i f_i = B) during optimization.
  bool size_aware = false;
};

/// Per-phase wall-clock breakdown, for the Figure 7-9 timing experiments.
struct PlanTimings {
  double partition_seconds = 0.0;
  double kmeans_seconds = 0.0;
  double solve_seconds = 0.0;
  double expand_seconds = 0.0;
  double total_seconds = 0.0;
};

/// A complete synchronization plan.
struct FreshenPlan {
  /// Sync frequency per element (per period).
  std::vector<double> frequencies;
  /// Analytic perceived freshness sum_i p_i F(f_i, l_i) of the plan.
  double perceived_freshness = 0.0;
  /// Analytic general freshness (1/N) sum_i F(f_i, l_i).
  double general_freshness = 0.0;
  /// Actual bandwidth consumed, sum_i s_i f_i (== budget by construction).
  double bandwidth_used = 0.0;
  /// Partitions actually used (0 in exact mode; can be < requested when
  /// k-means drops empty clusters).
  size_t num_partitions_used = 0;
  /// Phase timings.
  PlanTimings timings;
};

/// Stateless planner; options fixed at construction.
class FreshenPlanner {
 public:
  explicit FreshenPlanner(PlannerOptions options) : options_(options) {}

  /// Plans for the given catalog and per-period bandwidth budget (> 0).
  Result<FreshenPlan> Plan(const ElementSet& elements,
                           double bandwidth) const;

  /// The options this planner was built with.
  const PlannerOptions& options() const { return options_; }

 private:
  PlannerOptions options_;
  KktWaterFillingSolver solver_;
};

}  // namespace freshen

#endif  // FRESHEN_CORE_PLANNER_H_
