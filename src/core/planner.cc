#include "core/planner.h"

#include <cmath>

#include "common/string_util.h"
#include "common/timer.h"
#include "model/metrics.h"
#include "opt/problem.h"
#include "partition/transformed.h"

namespace freshen {

std::string ToString(Technique technique) {
  switch (technique) {
    case Technique::kPerceived:
      return "PF_TECHNIQUE";
    case Technique::kGeneral:
      return "GF_TECHNIQUE";
  }
  return "UNKNOWN_TECHNIQUE";
}

Result<FreshenPlan> FreshenPlanner::Plan(const ElementSet& elements,
                                         double bandwidth) const {
  if (elements.empty()) {
    return Status::InvalidArgument("cannot plan for an empty catalog");
  }
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return Status::InvalidArgument(
        StrFormat("bandwidth must be positive and finite, got %g", bandwidth));
  }
  for (size_t i = 0; i < elements.size(); ++i) {
    if (!(elements[i].size > 0.0)) {
      return Status::InvalidArgument(
          StrFormat("element %zu has non-positive size", i));
    }
  }

  WallTimer total_timer;
  FreshenPlan plan;

  auto make_problem = [&](const ElementSet& catalog) {
    return options_.technique == Technique::kPerceived
               ? MakePerceivedProblem(catalog, bandwidth, options_.size_aware)
               : MakeGeneralProblem(catalog, bandwidth, options_.size_aware);
  };

  if (options_.mode == PlanMode::kExact) {
    WallTimer solve_timer;
    FRESHEN_ASSIGN_OR_RETURN(Allocation allocation,
                             solver_.Solve(make_problem(elements)));
    plan.timings.solve_seconds = solve_timer.ElapsedSeconds();
    plan.frequencies = std::move(allocation.frequencies);
  } else {
    // Step 1: sort-based partitioning.
    WallTimer phase_timer;
    FRESHEN_ASSIGN_OR_RETURN(
        std::vector<Partition> partitions,
        BuildPartitions(elements, options_.partition_key,
                        options_.num_partitions));
    plan.timings.partition_seconds = phase_timer.ElapsedSeconds();

    // Step 1b: optional k-means cleanup.
    if (options_.kmeans_iterations > 0) {
      phase_timer.Restart();
      KMeansRefiner refiner(elements, options_.kmeans_options);
      FRESHEN_ASSIGN_OR_RETURN(
          partitions, refiner.Refine(partitions, options_.kmeans_iterations));
      plan.timings.kmeans_seconds = phase_timer.ElapsedSeconds();
    }
    plan.num_partitions_used = partitions.size();

    // Step 2: solve the Transformed Problem over the representatives.
    phase_timer.Restart();
    CoreProblem transformed =
        BuildTransformedProblem(partitions, bandwidth, options_.size_aware);
    if (options_.technique == Technique::kGeneral) {
      // GF weighs every element equally: partition weight n_j / N.
      const double inv_n = 1.0 / static_cast<double>(elements.size());
      for (size_t j = 0; j < partitions.size(); ++j) {
        transformed.weights[j] =
            static_cast<double>(partitions[j].members.size()) * inv_n;
      }
    }
    FRESHEN_ASSIGN_OR_RETURN(Allocation allocation,
                             solver_.Solve(transformed));
    plan.timings.solve_seconds = phase_timer.ElapsedSeconds();

    // Step 3: expand partition frequencies to element frequencies.
    phase_timer.Restart();
    FRESHEN_ASSIGN_OR_RETURN(
        plan.frequencies,
        ExpandAllocation(elements, partitions, allocation.frequencies,
                         options_.allocation_policy));
    plan.timings.expand_seconds = phase_timer.ElapsedSeconds();
  }

  // Feasibility w.r.t. actual sizes: proportional rescale (no-op whenever
  // the optimization already used the true costs).
  const double spend = BandwidthUsed(elements, plan.frequencies);
  if (spend > 0.0) {
    const double scale = bandwidth / spend;
    for (double& f : plan.frequencies) f *= scale;
  }

  plan.perceived_freshness = PerceivedFreshness(elements, plan.frequencies);
  plan.general_freshness = GeneralFreshness(elements, plan.frequencies);
  plan.bandwidth_used = BandwidthUsed(elements, plan.frequencies);
  plan.timings.total_seconds = total_timer.ElapsedSeconds();
  return plan;
}

}  // namespace freshen
