#include "workload/spec.h"

namespace freshen {

std::string ToString(Alignment alignment) {
  switch (alignment) {
    case Alignment::kAligned:
      return "aligned";
    case Alignment::kReverse:
      return "reverse";
    case Alignment::kShuffled:
      return "shuffled";
  }
  return "unknown";
}

std::string ToString(SizeModel model) {
  switch (model) {
    case SizeModel::kUniform:
      return "uniform";
    case SizeModel::kPareto:
      return "pareto";
  }
  return "unknown";
}

ExperimentSpec ExperimentSpec::IdealCase() {
  ExperimentSpec spec;
  spec.num_objects = 500;
  spec.mean_updates_per_object = 2.0;  // NumUpdatesPerPeriod = 1000.
  spec.update_stddev = 1.0;
  spec.syncs_per_period = 250.0;
  spec.theta = 1.0;
  return spec;
}

ExperimentSpec ExperimentSpec::BigCase() {
  ExperimentSpec spec;
  spec.num_objects = 500000;
  spec.mean_updates_per_object = 2.0;  // NumUpdatesPerPeriod = 1,000,000.
  spec.update_stddev = 2.0;
  spec.syncs_per_period = 250000.0;
  spec.theta = 1.0;
  return spec;
}

}  // namespace freshen
