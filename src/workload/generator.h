// Builds synthetic mirror catalogs from an ExperimentSpec: Zipf master
// profile, gamma change rates, uniform or Pareto sizes, with the paper's
// alignment configurations applied.
#ifndef FRESHEN_WORKLOAD_GENERATOR_H_
#define FRESHEN_WORKLOAD_GENERATOR_H_

#include <vector>

#include "common/result.h"
#include "model/element.h"
#include "workload/spec.h"

namespace freshen {

/// Generates the element catalog described by `spec`. Element index equals
/// access rank: element 0 is the hottest (Zipf rank 1). Change rates are
/// drawn from gamma(mean, sigma) and then arranged per spec.alignment
/// relative to that rank order; sizes likewise per spec.size_alignment.
/// Deterministic in spec.seed. Fails on invalid parameters (e.g. zero
/// objects, non-positive mean rate).
Result<ElementSet> GenerateCatalog(const ExperimentSpec& spec);

/// Draws `n` change rates from the spec's gamma distribution (unsorted,
/// deterministic in `seed`).
std::vector<double> DrawChangeRates(const ExperimentSpec& spec);

/// Draws `n` object sizes from the spec's size model (unsorted,
/// deterministic in `seed`).
std::vector<double> DrawSizes(const ExperimentSpec& spec);

/// Arranges `values` against rank order: descending for kAligned (rank 0
/// gets the largest value), ascending for kReverse, random permutation for
/// kShuffled. The shuffle is deterministic in `seed`.
void ArrangeByRank(std::vector<double>& values, Alignment alignment,
                   uint64_t seed);

}  // namespace freshen

#endif  // FRESHEN_WORKLOAD_GENERATOR_H_
