// Declarative experiment specifications matching the paper's simulator
// parameters (section 4): NumObjects, NumUpdatesPerPeriod (via the gamma
// mean), NumSyncsPerPeriod, Theta and UpdateStdDev, plus the alignment of
// access vs change distributions (Figure 2) and the object-size model (§5).
#ifndef FRESHEN_WORKLOAD_SPEC_H_
#define FRESHEN_WORKLOAD_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace freshen {

/// How the change-rate distribution is aligned against the (rank-ordered)
/// access distribution — the paper's three configurations (§2.2.2, Fig. 2).
enum class Alignment {
  /// Hottest elements change most (volatile stocks / day traders).
  kAligned,
  /// Hottest elements change least.
  kReverse,
  /// No relationship: change rates shuffled randomly across ranks.
  kShuffled,
};

/// Returns "aligned" / "reverse" / "shuffled".
std::string ToString(Alignment alignment);

/// Object-size models (§5).
enum class SizeModel {
  /// All objects have size 1.0 (the core problem's assumption).
  kUniform,
  /// Pareto-distributed sizes (web object sizes, citing [12]).
  kPareto,
};

/// Returns "uniform" / "pareto".
std::string ToString(SizeModel model);

/// How object sizes relate to element rank (used by Figures 10-11).
enum class SizeAlignment {
  /// Sizes assigned in the order they were drawn (no relationship).
  kShuffled,
  /// Largest object first (rank 1 biggest) — Figure 10.
  kAligned,
  /// Smallest object first — Figure 11's "change and size reversed".
  kReverse,
};

/// Full description of a synthetic experiment. Field defaults reproduce the
/// paper's Table 2 ("Setup for Ideal Experiments").
struct ExperimentSpec {
  /// Number of objects in the mirror (N).
  size_t num_objects = 500;
  /// Mean updates per object per sync period (gamma mean). Table 2's
  /// NumUpdatesPerPeriod = 1000 over 500 objects = mean 2.
  double mean_updates_per_object = 2.0;
  /// Standard deviation of the gamma change-rate distribution (sigma).
  double update_stddev = 1.0;
  /// Sync bandwidth per period (NumSyncsPerPeriod), in bandwidth units.
  double syncs_per_period = 250.0;
  /// Zipf skew of the master profile (theta).
  double theta = 1.0;
  /// Alignment between access rank and change rate.
  Alignment alignment = Alignment::kShuffled;
  /// Object-size distribution.
  SizeModel size_model = SizeModel::kUniform;
  /// Pareto shape when size_model == kPareto (paper uses 1.1).
  double pareto_shape = 1.1;
  /// Mean object size (paper uses 1.0).
  double mean_size = 1.0;
  /// Alignment between access rank and size.
  SizeAlignment size_alignment = SizeAlignment::kShuffled;
  /// Root seed for all randomness in the generated catalog.
  uint64_t seed = 20030305;  // ICDE 2003 :-)

  /// Table 2 of the paper ("ideal" experiments, N = 500).
  static ExperimentSpec IdealCase();
  /// Table 3 of the paper ("big" experiments, N = 500,000).
  static ExperimentSpec BigCase();
};

}  // namespace freshen

#endif  // FRESHEN_WORKLOAD_SPEC_H_
