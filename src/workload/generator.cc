#include "workload/generator.h"

#include <algorithm>
#include <functional>

#include "common/macros.h"
#include "common/string_util.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "rng/zipf.h"

namespace freshen {
namespace {

// Distinct stream tags so rates, sizes and shuffles never share a stream.
constexpr uint64_t kRateStream = 0x7261746573ULL;   // "rates"
constexpr uint64_t kSizeStream = 0x73697a6573ULL;   // "sizes"
constexpr uint64_t kShufStream = 0x73687566ULL;     // "shuf"

Alignment SizeAlignmentToAlignment(SizeAlignment alignment) {
  switch (alignment) {
    case SizeAlignment::kAligned:
      return Alignment::kAligned;
    case SizeAlignment::kReverse:
      return Alignment::kReverse;
    case SizeAlignment::kShuffled:
      return Alignment::kShuffled;
  }
  return Alignment::kShuffled;
}

}  // namespace

std::vector<double> DrawChangeRates(const ExperimentSpec& spec) {
  Rng rng(spec.seed ^ kRateStream);
  std::vector<double> rates(spec.num_objects);
  for (double& rate : rates) {
    rate = SampleGammaMeanStdDev(rng, spec.mean_updates_per_object,
                                 spec.update_stddev);
  }
  return rates;
}

std::vector<double> DrawSizes(const ExperimentSpec& spec) {
  std::vector<double> sizes(spec.num_objects, spec.mean_size);
  if (spec.size_model == SizeModel::kPareto) {
    Rng rng(spec.seed ^ kSizeStream);
    const double scale = ParetoScaleForMean(spec.pareto_shape, spec.mean_size);
    for (double& size : sizes) {
      size = SamplePareto(rng, spec.pareto_shape, scale);
    }
  }
  return sizes;
}

void ArrangeByRank(std::vector<double>& values, Alignment alignment,
                   uint64_t seed) {
  switch (alignment) {
    case Alignment::kAligned:
      std::sort(values.begin(), values.end(), std::greater<double>());
      break;
    case Alignment::kReverse:
      std::sort(values.begin(), values.end());
      break;
    case Alignment::kShuffled: {
      Rng rng(seed ^ kShufStream);
      Shuffle(rng, values);
      break;
    }
  }
}

Result<ElementSet> GenerateCatalog(const ExperimentSpec& spec) {
  if (spec.num_objects == 0) {
    return Status::InvalidArgument("num_objects must be positive");
  }
  if (!(spec.mean_updates_per_object > 0.0)) {
    return Status::InvalidArgument("mean_updates_per_object must be > 0");
  }
  if (!(spec.update_stddev > 0.0)) {
    return Status::InvalidArgument("update_stddev must be > 0");
  }
  if (spec.theta < 0.0) {
    return Status::InvalidArgument("theta must be >= 0");
  }
  if (spec.size_model == SizeModel::kPareto && !(spec.pareto_shape > 1.0)) {
    return Status::InvalidArgument(
        StrFormat("pareto_shape must be > 1 to fix the mean, got %g",
                  spec.pareto_shape));
  }
  if (!(spec.mean_size > 0.0)) {
    return Status::InvalidArgument("mean_size must be > 0");
  }

  std::vector<double> probs = ZipfProbabilities(spec.num_objects, spec.theta);
  std::vector<double> rates = DrawChangeRates(spec);
  ArrangeByRank(rates, spec.alignment, spec.seed);
  std::vector<double> sizes = DrawSizes(spec);
  ArrangeByRank(sizes, SizeAlignmentToAlignment(spec.size_alignment),
                spec.seed + 1);

  return MakeElementSet(rates, probs, sizes);
}

}  // namespace freshen
