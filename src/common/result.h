// Result<T>: value-or-Status, the freshen equivalent of absl::StatusOr /
// arrow::Result.
#ifndef FRESHEN_COMMON_RESULT_H_
#define FRESHEN_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace freshen {

/// Holds either a value of type T or a non-OK Status describing why the value
/// could not be produced. Accessing value() on a failed Result aborts, so
/// callers must test ok() (or use FRESHEN_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    FRESHEN_CHECK(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True when a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the failure otherwise.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// The held value. Requires ok().
  const T& value() const& {
    FRESHEN_CHECK(ok());
    return *value_;
  }
  T& value() & {
    FRESHEN_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    FRESHEN_CHECK(ok());
    return std::move(*value_);
  }

  /// Dereference shorthand for value().
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value when ok, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

}  // namespace freshen

#endif  // FRESHEN_COMMON_RESULT_H_
