#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace freshen {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace freshen
