#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace freshen {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Default destination: stderr, one fwrite per line under a mutex so lines
// from concurrent threads never interleave.
class StderrLogSink : public LogSink {
 public:
  void Write(LogLevel level, std::string_view line) override {
    (void)level;
    std::lock_guard<std::mutex> lock(mu_);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }

 private:
  std::mutex mu_;
};

StderrLogSink& DefaultSink() {
  static StderrLogSink* const kSink = new StderrLogSink();
  return *kSink;
}

// nullptr means "use DefaultSink()"; swapped atomically so SetLogSink is
// safe against concurrent logging.
std::atomic<LogSink*> g_sink{nullptr};

// "2026-08-05T12:34:56.123Z" (UTC, millisecond resolution).
std::string Iso8601Now() {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm utc{};
  gmtime_r(&ts.tv_sec, &utc);
  char buffer[32];
  const int millis = static_cast<int>(ts.tv_nsec / 1000000);
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, millis);
  return buffer;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogSink* SetLogSink(LogSink* sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << Iso8601Now() << " " << LevelTag(level) << " " << file
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  stream_ << "\n";
  const std::string line = stream_.str();
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) sink = &DefaultSink();
  sink->Write(level_, line);
}

}  // namespace internal
}  // namespace freshen
