// Minimal leveled logging to stderr. Benchmarks and the simulator use this to
// report progress without polluting stdout (which carries result tables).
#ifndef FRESHEN_COMMON_LOGGING_H_
#define FRESHEN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace freshen {

/// Severity levels, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted. Defaults to kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction when `level` passes the
/// threshold. Not for direct use: see the FRESHEN_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace freshen

/// Usage: FRESHEN_LOG(kInfo) << "solved in " << ms << " ms";
#define FRESHEN_LOG(severity)                                        \
  ::freshen::internal::LogMessage(::freshen::LogLevel::severity,     \
                                  __FILE__, __LINE__)                \
      .stream()

#endif  // FRESHEN_COMMON_LOGGING_H_
