// Minimal leveled logging. Benchmarks and the simulator use this to report
// progress without polluting stdout (which carries result tables).
//
// Emission is thread-safe: each log line is rendered to one string —
// "[<ISO-8601 UTC> <level> <file>:<line>] message\n" — and handed to the
// installed LogSink in a single call; the default sink writes it to stderr
// with one mutex-guarded fwrite, so concurrent lines never interleave.
// Tests install their own LogSink to capture output instead of scraping
// stderr.
#ifndef FRESHEN_COMMON_LOGGING_H_
#define FRESHEN_COMMON_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace freshen {

/// Severity levels, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted. Defaults to kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current minimum emitted level.
LogLevel GetLogLevel();

/// Receives fully-formatted log lines (trailing newline included). Write()
/// may be called from any thread; implementations must be self-synchronized
/// (the default stderr sink serializes on an internal mutex).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, std::string_view line) = 0;
};

/// Installs `sink` as the destination for all subsequent log lines and
/// returns the previously installed sink (nullptr when that was the default
/// stderr sink). Passing nullptr restores the default. The caller keeps
/// ownership of `sink` and must keep it alive until replaced.
LogSink* SetLogSink(LogSink* sink);

namespace internal {

/// Stream-style log line; emits on destruction when `level` passes the
/// threshold. Not for direct use: see the FRESHEN_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace freshen

/// Usage: FRESHEN_LOG(kInfo) << "solved in " << ms << " ms";
#define FRESHEN_LOG(severity)                                        \
  ::freshen::internal::LogMessage(::freshen::LogLevel::severity,     \
                                  __FILE__, __LINE__)                \
      .stream()

#endif  // FRESHEN_COMMON_LOGGING_H_
