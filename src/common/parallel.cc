#include "common/parallel.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace freshen {
namespace par {

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ShardCountFor(size_t n, size_t grain, size_t max_shards) {
  if (n == 0) return 0;
  FRESHEN_DCHECK(grain > 0 && max_shards > 0);
  return std::clamp<size_t>(n / grain, 1, max_shards);
}

std::vector<Shard> ShardPlanFor(size_t n, size_t grain, size_t max_shards) {
  const size_t count = ShardCountFor(n, grain, max_shards);
  std::vector<Shard> plan;
  plan.reserve(count);
  const size_t base = count == 0 ? 0 : n / count;
  const size_t remainder = count == 0 ? 0 : n % count;
  size_t begin = 0;
  for (size_t s = 0; s < count; ++s) {
    const size_t size = base + (s < remainder ? 1 : 0);
    plan.push_back(Shard{s, begin, begin + size});
    begin += size;
  }
  return plan;
}

size_t ShardCount(size_t n) { return ShardCountFor(n, kShardGrain, kMaxShards); }

std::vector<Shard> ShardPlan(size_t n) {
  return ShardPlanFor(n, kShardGrain, kMaxShards);
}

size_t ShardIndexOf(size_t n, size_t i) {
  FRESHEN_DCHECK(i < n);
  const size_t count = ShardCount(n);
  const size_t base = n / count;
  const size_t remainder = n % count;
  const size_t pivot = remainder * (base + 1);
  if (i < pivot) return i / (base + 1);
  return remainder + (i - pivot) / base;
}

namespace detail {
namespace {

// Registered once; updated lock-free per region.
struct ParMetrics {
  obs::Counter* regions;
  obs::Counter* inline_regions;
  obs::Counter* shards;
  obs::Gauge* last_threads;
  obs::Gauge* last_efficiency;
};

const ParMetrics& GetParMetrics() {
  static const ParMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return ParMetrics{
        registry.GetCounter("freshen_par_regions_total",
                            {{"mode", "pooled"}}),
        registry.GetCounter("freshen_par_regions_total",
                            {{"mode", "inline"}}),
        registry.GetCounter("freshen_par_shards_total"),
        registry.GetGauge("freshen_par_last_region_threads"),
        registry.GetGauge("freshen_par_last_region_efficiency")};
  }();
  return metrics;
}

}  // namespace

ThreadPool& SharedPool() {
  static ThreadPool pool(ThreadPool::Options{
      .num_threads = std::max<size_t>(HardwareThreads(), 8),
      .queue_capacity = 4096});
  return pool;
}

void RecordRegion(size_t shards, size_t tasks, double wall_seconds,
                  double busy_seconds) {
  const ParMetrics& metrics = GetParMetrics();
  metrics.regions->Increment();
  metrics.shards->Add(static_cast<double>(shards));
  metrics.last_threads->Set(static_cast<double>(tasks));
  if (wall_seconds > 0.0 && tasks > 0) {
    metrics.last_efficiency->Set(
        busy_seconds / (static_cast<double>(tasks) * wall_seconds));
  }
}

void RecordInlineRegion(size_t shards) {
  const ParMetrics& metrics = GetParMetrics();
  metrics.inline_regions->Increment();
  metrics.shards->Add(static_cast<double>(shards));
}

}  // namespace detail

void TaskGroup::Spawn(std::function<void()> fn) {
  // Held by shared_ptr so the closure survives a rejected submit (TrySubmit
  // consumes its argument either way) and can still run inline below.
  auto task = std::make_shared<std::function<void()>>(std::move(fn));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  Status submitted = detail::SharedPool().TrySubmit([this, task] {
    (*task)();
    Finish();
  });
  if (!submitted.ok()) {
    // Queue full or pool shutting down: degrade to inline execution so the
    // group's completion never depends on pool capacity.
    (*task)();
    Finish();
  }
}

void TaskGroup::Join() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return outstanding_ == 0; });
}

void TaskGroup::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  FRESHEN_CHECK(outstanding_ > 0);
  if (--outstanding_ == 0) done_.notify_all();
}

Executor::Executor(size_t threads)
    : threads_(threads == 0 ? HardwareThreads() : threads) {}

}  // namespace par
}  // namespace freshen
