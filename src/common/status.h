// Error handling without exceptions, in the style of Arrow/RocksDB status
// objects. Every fallible freshen API returns Status or Result<T>.
#ifndef FRESHEN_COMMON_STATUS_H_
#define FRESHEN_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace freshen {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code, e.g.
/// "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// The result of an operation that can fail. Cheap to copy in the OK case
/// (no allocation); failure carries a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor (or OK()) for success.
  Status(StatusCode code, std::string message);

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string message);
  /// Returns a FailedPrecondition status with the given message.
  static Status FailedPrecondition(std::string message);
  /// Returns a NotFound status with the given message.
  static Status NotFound(std::string message);
  /// Returns an OutOfRange status with the given message.
  static Status OutOfRange(std::string message);
  /// Returns an Unimplemented status with the given message.
  static Status Unimplemented(std::string message);
  /// Returns an Internal status with the given message.
  static Status Internal(std::string message);
  /// Returns an Unavailable status (transient failure; retrying may help).
  static Status Unavailable(std::string message);
  /// Returns a DeadlineExceeded status (the operation timed out).
  static Status DeadlineExceeded(std::string message);
  /// Returns a ResourceExhausted status (a bounded resource is full).
  static Status ResourceExhausted(std::string message);

  /// True when the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The failure category (kOk on success).
  StatusCode code() const { return code_; }
  /// The failure message (empty on success).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace freshen

#endif  // FRESHEN_COMMON_STATUS_H_
