// freshen::simd — explicit SIMD for the solvers' transcendental kernels.
//
// The water-filling solvers spend nearly all their time evaluating
// exp/log-shaped kernels over the compacted SoA active set. libm gives one
// root per call; this header gives kLanes per instruction, with three
// properties the solvers rely on:
//
//   * Compile-time dispatch. One backend is chosen when the translation
//     unit is compiled: AVX-512F (8 lanes), AVX2+FMA (4 lanes), NEON on
//     aarch64 (2 lanes), or a portable scalar fallback (1 lane). There is
//     no runtime dispatch and no function-pointer indirection in the hot
//     loop.
//   * Lane/scalar bit-equality. Every algorithm is a single template
//     instantiated for both the native pack and ScalarPack, so the two
//     run the *same operation sequence* — std::fma where the vector uses
//     vfmadd, one rounding per step. A batched call is bit-identical to
//     calling the scalar reference once per element (tests/simd_test.cc
//     enforces this, tails included). This is what lets the solvers keep
//     the byte-identical determinism contract while vectorizing.
//   * No libm in the loop. exp/expm1/log1p are implemented here from
//     add/mul/fma and integer bit manipulation, so results do not depend
//     on the host libm version.
//
// Domain notes (deliberate, documented trade-offs — these are solver
// kernels, not a general libm):
//   * Exp flushes to 0 below x = -708 (no subnormal outputs) and to +inf
//     above x = 709 (slightly early; true overflow is 709.78).
//   * Expm1 returns exactly -1 below x = -708.
//   * Log1p requires 1 + x to be a positive *normal* double.
//   * NaN inputs are unsupported (they are clamped like ordinary
//     out-of-range values; callers must not pass them).
#ifndef FRESHEN_COMMON_SIMD_H_
#define FRESHEN_COMMON_SIMD_H_

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace freshen {
namespace simd {

// ---------------------------------------------------------------------------
// Packs: one struct of static ops per backend. All backends expose the same
// interface; algorithms below are templates over the pack type.
// ---------------------------------------------------------------------------

/// Portable 1-lane pack. Always available; the reference implementation the
/// vector backends must match bit-for-bit.
struct ScalarPack {
  static constexpr size_t kWidth = 1;
  static constexpr const char* kName = "scalar";
  using Vec = double;
  using Mask = bool;

  static Vec Broadcast(double x) { return x; }
  static Vec Load(const double* p) { return *p; }
  static void Store(double* p, Vec v) { *p = v; }

  static Vec Add(Vec a, Vec b) { return a + b; }
  static Vec Sub(Vec a, Vec b) { return a - b; }
  static Vec Mul(Vec a, Vec b) { return a * b; }
  static Vec Div(Vec a, Vec b) { return a / b; }
  static Vec Fma(Vec a, Vec b, Vec c) { return std::fma(a, b, c); }
  static Vec Sqrt(Vec a) { return std::sqrt(a); }
  static Vec Neg(Vec a) { return -a; }
  static Vec Abs(Vec a) { return std::fabs(a); }
  static Vec RoundNearest(Vec a) { return std::nearbyint(a); }

  static Mask Lt(Vec a, Vec b) { return a < b; }
  static Mask Le(Vec a, Vec b) { return a <= b; }
  static Mask Gt(Vec a, Vec b) { return a > b; }
  static Mask Ge(Vec a, Vec b) { return a >= b; }
  static Vec Select(Mask m, Vec t, Vec f) { return m ? t : f; }
  static Mask MaskAnd(Mask a, Mask b) { return a && b; }
  static Mask MaskOr(Mask a, Mask b) { return a || b; }
  static Mask MaskNot(Mask a) { return !a; }
  static bool AnyTrue(Mask m) { return m; }
  static bool AllTrue(Mask m) { return m; }

  /// 2^k for integer-valued kd in [-1022, 1023]. Exact.
  static Vec Pow2Int(Vec kd) {
    const int64_t k = static_cast<int64_t>(kd);
    return std::bit_cast<double>(static_cast<uint64_t>(k + 1023) << 52);
  }

  /// Decomposes a positive normal u as m * 2^e with m in [sqrt(1/2),
  /// sqrt(2)). Exact (pure bit manipulation plus an exact halving).
  static void SplitExp(Vec u, Vec* m, Vec* e) {
    const uint64_t iu = std::bit_cast<uint64_t>(u);
    double md =
        std::bit_cast<double>((iu & 0x000FFFFFFFFFFFFFull) |
                              0x3FF0000000000000ull);
    double ed = static_cast<double>(iu >> 52) - 1023.0;
    if (md >= 1.41421356237309514547) {  // sqrt(2), rounded up.
      md *= 0.5;
      ed += 1.0;
    }
    *m = md;
    *e = ed;
  }
};

#if defined(__AVX512F__)

/// 8-lane AVX-512F pack.
struct Avx512Pack {
  static constexpr size_t kWidth = 8;
  static constexpr const char* kName = "avx512";
  using Vec = __m512d;
  using Mask = __mmask8;

  static Vec Broadcast(double x) { return _mm512_set1_pd(x); }
  static Vec Load(const double* p) { return _mm512_loadu_pd(p); }
  static void Store(double* p, Vec v) { _mm512_storeu_pd(p, v); }

  static Vec Add(Vec a, Vec b) { return _mm512_add_pd(a, b); }
  static Vec Sub(Vec a, Vec b) { return _mm512_sub_pd(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm512_mul_pd(a, b); }
  static Vec Div(Vec a, Vec b) { return _mm512_div_pd(a, b); }
  static Vec Fma(Vec a, Vec b, Vec c) { return _mm512_fmadd_pd(a, b, c); }
  static Vec Sqrt(Vec a) {
    // maskz form: see RoundNearest.
    return _mm512_maskz_sqrt_pd(0xFF, a);
  }
  static Vec Neg(Vec a) {
    return _mm512_castsi512_pd(_mm512_xor_si512(
        _mm512_castpd_si512(a), _mm512_set1_epi64(0x8000000000000000ll)));
  }
  static Vec Abs(Vec a) { return _mm512_abs_pd(a); }
  static Vec RoundNearest(Vec a) {
    // maskz form: GCC's unmasked roundscale routes through
    // _mm512_undefined_pd() and trips -Wmaybe-uninitialized.
    return _mm512_maskz_roundscale_pd(
        0xFF, a, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }

  static Mask Lt(Vec a, Vec b) { return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ); }
  static Mask Le(Vec a, Vec b) { return _mm512_cmp_pd_mask(a, b, _CMP_LE_OQ); }
  static Mask Gt(Vec a, Vec b) { return _mm512_cmp_pd_mask(a, b, _CMP_GT_OQ); }
  static Mask Ge(Vec a, Vec b) { return _mm512_cmp_pd_mask(a, b, _CMP_GE_OQ); }
  static Vec Select(Mask m, Vec t, Vec f) {
    return _mm512_mask_blend_pd(m, f, t);
  }
  static Mask MaskAnd(Mask a, Mask b) { return a & b; }
  static Mask MaskOr(Mask a, Mask b) { return a | b; }
  static Mask MaskNot(Mask a) { return static_cast<Mask>(~a); }
  static bool AnyTrue(Mask m) { return m != 0; }
  static bool AllTrue(Mask m) { return m == 0xFF; }

  static Vec Pow2Int(Vec kd) {
    // Exact double -> int64 via the 1.5*2^52 shifter, then assemble the
    // exponent field. Matches ScalarPack::Pow2Int bit-for-bit because every
    // step is exact.
    const Vec t = _mm512_add_pd(kd, _mm512_set1_pd(0x1.8p52));
    __m512i i = _mm512_castpd_si512(t);
    i = _mm512_sub_epi64(i, _mm512_set1_epi64(0x4338000000000000ll));
    i = _mm512_add_epi64(i, _mm512_set1_epi64(1023));
    return _mm512_castsi512_pd(_mm512_maskz_slli_epi64(0xFF, i, 52));
  }

  static void SplitExp(Vec u, Vec* m, Vec* e) {
    const __m512i iu = _mm512_castpd_si512(u);
    Vec md = _mm512_castsi512_pd(_mm512_or_si512(
        _mm512_and_si512(iu, _mm512_set1_epi64(0x000FFFFFFFFFFFFFll)),
        _mm512_set1_epi64(0x3FF0000000000000ll)));
    // Biased exponent as a double via the 2^52 OR trick.
    const Vec ed_raw = _mm512_sub_pd(
        _mm512_castsi512_pd(_mm512_or_si512(
            _mm512_maskz_srli_epi64(0xFF, iu, 52),
            _mm512_set1_epi64(0x4330000000000000ll))),
        _mm512_set1_pd(0x1p52));
    const Mask big = Ge(md, Broadcast(1.41421356237309514547));
    md = Select(big, Mul(md, Broadcast(0.5)), md);
    Vec ed = Sub(ed_raw, Broadcast(1023.0));
    ed = Select(big, Add(ed, Broadcast(1.0)), ed);
    *m = md;
    *e = ed;
  }
};

using NativePack = Avx512Pack;

#elif defined(__AVX2__) && defined(__FMA__)

/// 4-lane AVX2+FMA pack.
struct Avx2Pack {
  static constexpr size_t kWidth = 4;
  static constexpr const char* kName = "avx2";
  using Vec = __m256d;
  using Mask = __m256d;  // All-ones / all-zeros per lane.

  static Vec Broadcast(double x) { return _mm256_set1_pd(x); }
  static Vec Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, Vec v) { _mm256_storeu_pd(p, v); }

  static Vec Add(Vec a, Vec b) { return _mm256_add_pd(a, b); }
  static Vec Sub(Vec a, Vec b) { return _mm256_sub_pd(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm256_mul_pd(a, b); }
  static Vec Div(Vec a, Vec b) { return _mm256_div_pd(a, b); }
  static Vec Fma(Vec a, Vec b, Vec c) { return _mm256_fmadd_pd(a, b, c); }
  static Vec Sqrt(Vec a) { return _mm256_sqrt_pd(a); }
  static Vec Neg(Vec a) { return _mm256_xor_pd(a, Broadcast(-0.0)); }
  static Vec Abs(Vec a) { return _mm256_andnot_pd(Broadcast(-0.0), a); }
  static Vec RoundNearest(Vec a) {
    return _mm256_round_pd(a, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }

  static Mask Lt(Vec a, Vec b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static Mask Le(Vec a, Vec b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
  static Mask Gt(Vec a, Vec b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static Mask Ge(Vec a, Vec b) { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
  static Vec Select(Mask m, Vec t, Vec f) {
    return _mm256_blendv_pd(f, t, m);
  }
  static Mask MaskAnd(Mask a, Mask b) { return _mm256_and_pd(a, b); }
  static Mask MaskOr(Mask a, Mask b) { return _mm256_or_pd(a, b); }
  static Mask MaskNot(Mask a) {
    return _mm256_xor_pd(a, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)));
  }
  static bool AnyTrue(Mask m) { return _mm256_movemask_pd(m) != 0; }
  static bool AllTrue(Mask m) { return _mm256_movemask_pd(m) == 0xF; }

  static Vec Pow2Int(Vec kd) {
    const Vec t = _mm256_add_pd(kd, Broadcast(0x1.8p52));
    __m256i i = _mm256_castpd_si256(t);
    i = _mm256_sub_epi64(i, _mm256_set1_epi64x(0x4338000000000000ll));
    i = _mm256_add_epi64(i, _mm256_set1_epi64x(1023));
    return _mm256_castsi256_pd(_mm256_slli_epi64(i, 52));
  }

  static void SplitExp(Vec u, Vec* m, Vec* e) {
    const __m256i iu = _mm256_castpd_si256(u);
    Vec md = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(iu, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFll)),
        _mm256_set1_epi64x(0x3FF0000000000000ll)));
    const Vec ed_raw = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(
            _mm256_srli_epi64(iu, 52),
            _mm256_set1_epi64x(0x4330000000000000ll))),
        Broadcast(0x1p52));
    const Mask big = Ge(md, Broadcast(1.41421356237309514547));
    md = Select(big, Mul(md, Broadcast(0.5)), md);
    Vec ed = Sub(ed_raw, Broadcast(1023.0));
    ed = Select(big, Add(ed, Broadcast(1.0)), ed);
    *m = md;
    *e = ed;
  }
};

using NativePack = Avx2Pack;

#elif defined(__aarch64__)

/// 2-lane NEON pack (aarch64 has IEEE double NEON arithmetic).
struct NeonPack {
  static constexpr size_t kWidth = 2;
  static constexpr const char* kName = "neon";
  using Vec = float64x2_t;
  using Mask = uint64x2_t;

  static Vec Broadcast(double x) { return vdupq_n_f64(x); }
  static Vec Load(const double* p) { return vld1q_f64(p); }
  static void Store(double* p, Vec v) { vst1q_f64(p, v); }

  static Vec Add(Vec a, Vec b) { return vaddq_f64(a, b); }
  static Vec Sub(Vec a, Vec b) { return vsubq_f64(a, b); }
  static Vec Mul(Vec a, Vec b) { return vmulq_f64(a, b); }
  static Vec Div(Vec a, Vec b) { return vdivq_f64(a, b); }
  static Vec Fma(Vec a, Vec b, Vec c) { return vfmaq_f64(c, a, b); }
  static Vec Sqrt(Vec a) { return vsqrtq_f64(a); }
  static Vec Neg(Vec a) { return vnegq_f64(a); }
  static Vec Abs(Vec a) { return vabsq_f64(a); }
  static Vec RoundNearest(Vec a) { return vrndnq_f64(a); }

  static Mask Lt(Vec a, Vec b) { return vcltq_f64(a, b); }
  static Mask Le(Vec a, Vec b) { return vcleq_f64(a, b); }
  static Mask Gt(Vec a, Vec b) { return vcgtq_f64(a, b); }
  static Mask Ge(Vec a, Vec b) { return vcgeq_f64(a, b); }
  static Vec Select(Mask m, Vec t, Vec f) { return vbslq_f64(m, t, f); }
  static Mask MaskAnd(Mask a, Mask b) { return vandq_u64(a, b); }
  static Mask MaskOr(Mask a, Mask b) { return vorrq_u64(a, b); }
  static Mask MaskNot(Mask a) {
    return veorq_u64(a, vdupq_n_u64(~0ull));
  }
  static bool AnyTrue(Mask m) {
    return (vgetq_lane_u64(m, 0) | vgetq_lane_u64(m, 1)) != 0;
  }
  static bool AllTrue(Mask m) {
    return (vgetq_lane_u64(m, 0) & vgetq_lane_u64(m, 1)) == ~0ull;
  }

  static Vec Pow2Int(Vec kd) {
    const Vec t = vaddq_f64(kd, Broadcast(0x1.8p52));
    int64x2_t i = vreinterpretq_s64_f64(t);
    i = vsubq_s64(i, vdupq_n_s64(0x4338000000000000ll));
    i = vaddq_s64(i, vdupq_n_s64(1023));
    return vreinterpretq_f64_s64(vshlq_n_s64(i, 52));
  }

  static void SplitExp(Vec u, Vec* m, Vec* e) {
    const uint64x2_t iu = vreinterpretq_u64_f64(u);
    Vec md = vreinterpretq_f64_u64(vorrq_u64(
        vandq_u64(iu, vdupq_n_u64(0x000FFFFFFFFFFFFFull)),
        vdupq_n_u64(0x3FF0000000000000ull)));
    const Vec ed_raw = vsubq_f64(
        vreinterpretq_f64_u64(vorrq_u64(vshrq_n_u64(iu, 52),
                                        vdupq_n_u64(0x4330000000000000ull))),
        Broadcast(0x1p52));
    const Mask big = Ge(md, Broadcast(1.41421356237309514547));
    md = Select(big, Mul(md, Broadcast(0.5)), md);
    Vec ed = Sub(ed_raw, Broadcast(1023.0));
    ed = Select(big, Add(ed, Broadcast(1.0)), ed);
    *m = md;
    *e = ed;
  }
};

using NativePack = NeonPack;

#else

using NativePack = ScalarPack;

#endif

/// Lane count of the native backend (1 on the portable fallback).
inline constexpr size_t kLanes = NativePack::kWidth;

/// Human-readable backend name ("avx512" | "avx2" | "neon" | "scalar").
inline const char* BackendName() { return NativePack::kName; }

// ---------------------------------------------------------------------------
// Algorithms. One template each, instantiated for NativePack (batch path)
// and ScalarPack (reference path) — same operation sequence, same bits.
// ---------------------------------------------------------------------------

namespace detail {

inline constexpr double kLog2E = 1.44269504088896338700e+00;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;

/// exp(r) = 1 + r + r^2 * Q(r) on |r| <= ln2/2; Q's Taylor coefficients
/// 1/2! .. 1/14! (truncation ~4e-18 relative at the interval edge).
inline constexpr double kExpQ[] = {
    1.0 / 2,          1.0 / 6,           1.0 / 24,
    1.0 / 120,        1.0 / 720,         1.0 / 5040,
    1.0 / 40320,      1.0 / 362880,      1.0 / 3628800,
    1.0 / 39916800,   1.0 / 479001600,   1.0 / 6227020800.0,
    1.0 / 87178291200.0};

// fdlibm log() rational-correction coefficients.
inline constexpr double kLg1 = 6.666666666666735130e-01;
inline constexpr double kLg2 = 3.999999999940941908e-01;
inline constexpr double kLg3 = 2.857142874366239149e-01;
inline constexpr double kLg4 = 2.222219843214978396e-01;
inline constexpr double kLg5 = 1.818357216161805012e-01;
inline constexpr double kLg6 = 1.531383769920937332e-01;
inline constexpr double kLg7 = 1.479819860511658591e-01;

/// Shared range reduction: x = kd*ln2 + r with kd integral and
/// |r| <= ln2/2, plus y = exp(r) - 1 (exact relative accuracy near 0).
template <class P>
struct ExpReduction {
  typename P::Vec kd;
  typename P::Vec y;
};

template <class P>
inline ExpReduction<P> ReduceExp(typename P::Vec x) {
  using V = typename P::Vec;
  const V kd = P::RoundNearest(P::Mul(x, P::Broadcast(kLog2E)));
  V r = P::Fma(kd, P::Broadcast(-kLn2Hi), x);
  r = P::Fma(kd, P::Broadcast(-kLn2Lo), r);
  V q = P::Broadcast(kExpQ[12]);
  for (int i = 11; i >= 0; --i) {
    q = P::Fma(q, r, P::Broadcast(kExpQ[i]));
  }
  return ExpReduction<P>{kd, P::Fma(P::Mul(r, r), q, r)};
}

/// exp(x). Domain notes at the top of the file: flush-to-zero below -708,
/// +inf above 709, no NaN support.
template <class P>
inline typename P::Vec ExpT(typename P::Vec x) {
  using V = typename P::Vec;
  const V lo = P::Broadcast(-708.0);
  const V hi = P::Broadcast(709.0);
  V xc = P::Select(P::Lt(x, lo), lo, x);
  xc = P::Select(P::Gt(xc, hi), hi, xc);
  const ExpReduction<P> red = ReduceExp<P>(xc);
  const V scale = P::Pow2Int(red.kd);
  V out = P::Fma(red.y, scale, scale);
  out = P::Select(P::Gt(x, hi),
                  P::Broadcast(std::numeric_limits<double>::infinity()), out);
  out = P::Select(P::Lt(x, lo), P::Broadcast(0.0), out);
  return out;
}

/// expm1(x). Exactly -1 below x = -708; +inf above 709.
template <class P>
inline typename P::Vec Expm1T(typename P::Vec x) {
  using V = typename P::Vec;
  const V lo = P::Broadcast(-708.0);
  const V hi = P::Broadcast(709.0);
  V xc = P::Select(P::Lt(x, lo), lo, x);
  xc = P::Select(P::Gt(xc, hi), hi, xc);
  const ExpReduction<P> red = ReduceExp<P>(xc);
  const V scale = P::Pow2Int(red.kd);
  // 2^k (1 + y) - 1 = y*2^k + (2^k - 1); the subtraction is exact for
  // |k| <= 53 and drowned below the result's ulp outside that range.
  V out = P::Fma(red.y, scale, P::Sub(scale, P::Broadcast(1.0)));
  out = P::Select(P::Gt(x, hi),
                  P::Broadcast(std::numeric_limits<double>::infinity()), out);
  out = P::Select(P::Lt(x, lo), P::Broadcast(-1.0), out);
  return out;
}

/// Shared fdlibm log core: log(m * 2^kd) + c for m = 1 + f in
/// [sqrt(1/2), sqrt(2)), where c is a caller-supplied additive correction
/// (the relative residue of the argument reduction; 0 when exact).
template <class P>
inline typename P::Vec LogCoreT(typename P::Vec f, typename P::Vec kd,
                                typename P::Vec c) {
  using V = typename P::Vec;
  const V s = P::Div(f, P::Add(P::Broadcast(2.0), f));
  const V z = P::Mul(s, s);
  const V w = P::Mul(z, z);
  const V t1 =
      P::Mul(w, P::Fma(w, P::Fma(w, P::Broadcast(kLg6), P::Broadcast(kLg4)),
                       P::Broadcast(kLg2)));
  const V t2 = P::Mul(
      z, P::Fma(w,
                P::Fma(w, P::Fma(w, P::Broadcast(kLg7), P::Broadcast(kLg5)),
                       P::Broadcast(kLg3)),
                P::Broadcast(kLg1)));
  const V r = P::Add(t1, t2);
  const V hfsq = P::Mul(P::Broadcast(0.5), P::Mul(f, f));
  // k*ln2hi - ((hfsq - (s*(hfsq+R) + (k*ln2lo + c))) - f), as in musl.
  const V inner = P::Fma(s, P::Add(hfsq, r),
                         P::Fma(kd, P::Broadcast(kLn2Lo), c));
  return P::Fma(kd, P::Broadcast(kLn2Hi),
                P::Sub(f, P::Sub(hfsq, inner)));
}

/// log1p(x) for 1 + x a positive normal double. fdlibm/musl structure:
/// decompose 1+x = m*2^k with m in [sqrt(1/2), sqrt(2)), then the shared
/// core, plus the rounding-residue correction c that makes the reduction
/// exact. NOTE: when |1+x| << 1 the residue of forming 1+x is a large
/// *relative* error of the sum and this (like libm's log1p) cannot recover
/// precision x itself never had; for log of a directly-representable
/// positive v use LogPosT, which is exact in its reduction.
template <class P>
inline typename P::Vec Log1pT(typename P::Vec x) {
  using V = typename P::Vec;
  using M = typename P::Mask;
  const V one = P::Broadcast(1.0);
  const V u = P::Add(one, x);
  V m, kd;
  P::SplitExp(u, &m, &kd);
  const V f = P::Sub(m, one);
  // Residue of the 1+x rounding, as a relative correction. For k == 0 the
  // Sterbenz-exact form x - (u-1); for k > 0 the dual 1 - (u-x); for k < 0
  // (x near -1) u is exact-ish and the k==0 form degrades gracefully.
  const M pos = P::Gt(kd, P::Broadcast(0.0));
  const V c = P::Div(P::Select(pos, P::Sub(one, P::Sub(u, x)),
                               P::Sub(x, P::Sub(u, one))),
                     u);
  return LogCoreT<P>(f, kd, c);
}

/// log(v) for v a positive normal double. Same core as Log1pT but the
/// m * 2^k reduction of v is exact, so there is no correction term and the
/// result is ~1 ulp for any magnitude — including v << 1, where going
/// through Log1pT(v - 1) would lose ~all precision to the (v-1)+1 round
/// trip.
template <class P>
inline typename P::Vec LogPosT(typename P::Vec v) {
  using V = typename P::Vec;
  V m, kd;
  P::SplitExp(v, &m, &kd);
  const V f = P::Sub(m, P::Broadcast(1.0));
  return LogCoreT<P>(f, kd, P::Broadcast(0.0));
}

/// Applies a 1-in/1-out lane algorithm over an array with a padded tail
/// (pad value 0.0 is in-domain for exp/expm1/log1p).
template <class P, typename AlgFn>
inline void MapBatch(AlgFn alg, const double* x, double* out, size_t n) {
  constexpr size_t w = P::kWidth;
  size_t i = 0;
  for (; i + w <= n; i += w) {
    P::Store(out + i, alg(P::Load(x + i)));
  }
  if (i < n) {
    double buf[w] = {0.0};
    for (size_t j = i; j < n; ++j) buf[j - i] = x[j];
    typename P::Vec v = alg(P::Load(buf));
    P::Store(buf, v);
    for (size_t j = i; j < n; ++j) out[j] = buf[j - i];
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Public batch API + scalar references.
// ---------------------------------------------------------------------------

/// out[i] = exp(x[i]). Bit-identical to ExpRef per element.
inline void ExpBatch(const double* x, double* out, size_t n) {
  detail::MapBatch<NativePack>(
      [](NativePack::Vec v) { return detail::ExpT<NativePack>(v); }, x, out,
      n);
}

/// out[i] = expm1(x[i]). Bit-identical to Expm1Ref per element.
inline void Expm1Batch(const double* x, double* out, size_t n) {
  detail::MapBatch<NativePack>(
      [](NativePack::Vec v) { return detail::Expm1T<NativePack>(v); }, x, out,
      n);
}

/// out[i] = log1p(x[i]). Bit-identical to Log1pRef per element.
inline void Log1pBatch(const double* x, double* out, size_t n) {
  detail::MapBatch<NativePack>(
      [](NativePack::Vec v) { return detail::Log1pT<NativePack>(v); }, x, out,
      n);
}

/// out[i] = log(x[i]) for positive normal x[i]. Bit-identical to LogPosRef
/// per element.
inline void LogPosBatch(const double* x, double* out, size_t n) {
  detail::MapBatch<NativePack>(
      [](NativePack::Vec v) { return detail::LogPosT<NativePack>(v); }, x,
      out, n);
}

/// Scalar references: the same algorithm as one SIMD lane.
inline double ExpRef(double x) { return detail::ExpT<ScalarPack>(x); }
inline double Expm1Ref(double x) { return detail::Expm1T<ScalarPack>(x); }
inline double Log1pRef(double x) { return detail::Log1pT<ScalarPack>(x); }
inline double LogPosRef(double x) { return detail::LogPosT<ScalarPack>(x); }

}  // namespace simd
}  // namespace freshen

#endif  // FRESHEN_COMMON_SIMD_H_
