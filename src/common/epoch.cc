#include "common/epoch.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace freshen {
namespace {

// Unique id per domain so thread-local slot caches never confuse a new
// domain allocated at a dead domain's address.
std::atomic<uint64_t> next_domain_id{1};

}  // namespace

EpochDomain::EpochDomain()
    : slots_(kMaxReaders),
      id_(next_domain_id.fetch_add(1, std::memory_order_relaxed)) {}

EpochDomain::~EpochDomain() {
  // Whatever is still retired dies with the domain; by contract no reader
  // can be pinned once the owner destroys the domain.
  for (Retired& r : retired_) {
    if (r.deleter) r.deleter();
  }
}

EpochDomain::Slot* EpochDomain::ThreadSlot() {
  struct CacheEntry {
    uint64_t domain_id;
    Slot* slot;  // nullptr = this thread overflowed this domain.
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.domain_id == id_) return entry.slot;
  }
  const size_t index = claimed_slots_.fetch_add(1, std::memory_order_relaxed);
  Slot* slot = index < slots_.size() ? &slots_[index] : nullptr;
  cache.push_back({id_, slot});
  return slot;
}

uint64_t EpochDomain::Pin() {
  Slot* slot = ThreadSlot();
  if (slot == nullptr) {
    // Overflow path: serialize on the mutex (held until Unpin). The counter
    // makes the pin visible to TryReclaim, which refuses to reclaim while
    // any overflow reader is inside.
    overflow_mu_.lock();
    overflow_pins_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }
  for (;;) {
    const uint64_t e = epoch_.load(std::memory_order_seq_cst);
    slot->epoch.store(e, std::memory_order_seq_cst);
    // Store-load fence (both accesses seq_cst): either the publisher's
    // min-scan sees our advertised epoch, or we see its newer epoch and
    // re-advertise. Each retry implies the publisher advanced, so this
    // terminates after at most one lap per concurrent publication.
    if (epoch_.load(std::memory_order_seq_cst) == e) return e;
  }
}

void EpochDomain::Unpin() {
  Slot* slot = ThreadSlot();
  if (slot == nullptr) {
    overflow_pins_.fetch_sub(1, std::memory_order_seq_cst);
    overflow_mu_.unlock();
    return;
  }
  slot->epoch.store(kIdle, std::memory_order_release);
}

uint64_t EpochDomain::Advance() {
  // seq_cst so the new epoch orders against reader pin stores (see Pin).
  return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

void EpochDomain::Retire(uint64_t retire_epoch,
                         std::function<void()> deleter) {
  retired_.push_back({retire_epoch, std::move(deleter)});
}

uint64_t EpochDomain::MinPinnedEpoch() const {
  uint64_t min_epoch = kIdle;
  const size_t claimed =
      std::min(claimed_slots_.load(std::memory_order_relaxed), slots_.size());
  for (size_t i = 0; i < claimed; ++i) {
    const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e < min_epoch) min_epoch = e;
  }
  if (overflow_pins_.load(std::memory_order_seq_cst) > 0) {
    // Overflow pins are not epoch-tagged; treat them as pinning everything.
    return 0;
  }
  return min_epoch;
}

size_t EpochDomain::TryReclaim() {
  if (retired_.empty()) return 0;
  const uint64_t min_pinned = MinPinnedEpoch();
  // With no reader pinned (kIdle), everything retired so far is garbage:
  // every retire epoch is < the kIdle sentinel by construction.
  size_t reclaimed = 0;
  for (size_t i = 0; i < retired_.size();) {
    if (retired_[i].epoch < min_pinned) {
      if (retired_[i].deleter) retired_[i].deleter();
      retired_[i] = std::move(retired_.back());
      retired_.pop_back();
      ++reclaimed;
    } else {
      ++i;
    }
  }
  return reclaimed;
}

size_t EpochDomain::DrainAll() {
  while (PinnedReaders() > 0) {
    std::this_thread::yield();
  }
  return TryReclaim();
}

size_t EpochDomain::PinnedReaders() const {
  size_t pinned = overflow_pins_.load(std::memory_order_seq_cst);
  const size_t claimed =
      std::min(claimed_slots_.load(std::memory_order_relaxed), slots_.size());
  for (size_t i = 0; i < claimed; ++i) {
    if (slots_[i].epoch.load(std::memory_order_seq_cst) != kIdle) ++pinned;
  }
  return pinned;
}

}  // namespace freshen
