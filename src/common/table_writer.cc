#include "common/table_writer.h"

#include <algorithm>

#include "common/string_util.h"

namespace freshen {
namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::AddNumericRow(const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string TableWriter::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) sep += "  ";
    sep.append(widths[c], '-');
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TableWriter::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void TableWriter::Print(std::ostream& os) const { os << ToText(); }

}  // namespace freshen
