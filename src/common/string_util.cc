#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace freshen {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // +1: vsnprintf writes the terminating NUL into the buffer; std::string
    // guarantees data()[size()] is addressable for exactly that byte.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace freshen
