// A fixed-size worker pool draining a bounded MPMC task queue. Built for the
// sync executor (src/sync/executor.h) but generic: any subsystem that needs
// "run these closures on N threads, with backpressure" can use it.
//
// Contract:
//   * TrySubmit never blocks: a full queue returns ResourceExhausted
//     immediately (the caller decides whether that is a drop or a retry).
//   * Wait() blocks until the queue is empty and every worker is idle, so a
//     coordinator can submit a batch and then join on the whole batch.
//   * The destructor drains outstanding tasks and joins all workers
//     (join-on-destruct: no detached threads, ever).
//   * Exception-free: tasks must not throw; the pool's own API reports
//     failure through Status only.
#ifndef FRESHEN_COMMON_THREAD_POOL_H_
#define FRESHEN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace freshen {

/// Fixed-size thread pool with a bounded work queue and fail-fast submit.
class ThreadPool {
 public:
  struct Options {
    /// Worker threads. Must be >= 1.
    size_t num_threads = 4;
    /// Maximum tasks waiting in the queue (excluding tasks already running).
    /// Must be >= 1. TrySubmit fails fast once this many tasks are pending.
    size_t queue_capacity = 1024;
  };

  /// Starts `options.num_threads` workers immediately. Invalid options are
  /// clamped to 1 (the pool cannot report Status from a constructor; callers
  /// wanting validation should check options themselves).
  explicit ThreadPool(Options options);

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. Returns ResourceExhausted without
  /// blocking when the queue is at capacity, FailedPrecondition after the
  /// pool started shutting down.
  Status TrySubmit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. Tasks
  /// submitted concurrently with Wait() may or may not be covered; the
  /// intended pattern is submit-batch-then-Wait from one coordinator.
  void Wait();

  /// Tasks currently waiting in the queue (excludes running tasks).
  size_t QueueDepth() const;

  /// Worker thread count.
  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  const size_t queue_capacity_;
  mutable std::mutex mu_;
  std::condition_variable work_available_;  // Signals workers.
  std::condition_variable all_idle_;        // Signals Wait().
  std::deque<std::function<void()>> queue_;
  size_t active_tasks_ = 0;  // Tasks popped but not yet finished.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace freshen

#endif  // FRESHEN_COMMON_THREAD_POOL_H_
