// Wall-clock timing for the scalability experiments (Figures 7-9).
#ifndef FRESHEN_COMMON_TIMER_H_
#define FRESHEN_COMMON_TIMER_H_

#include <chrono>

namespace freshen {

/// Measures elapsed wall-clock time from construction (or the last Restart).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since start.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace freshen

#endif  // FRESHEN_COMMON_TIMER_H_
