// Small string helpers (GCC 12 lacks std::format, so benches/tables use
// these snprintf-based formatters).
#ifndef FRESHEN_COMMON_STRING_UTIL_H_
#define FRESHEN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace freshen {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 4);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace freshen

#endif  // FRESHEN_COMMON_STRING_UTIL_H_
