#include "common/status.h"

#include "common/macros.h"

namespace freshen {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message)) {
  FRESHEN_CHECK(code != StatusCode::kOk);
}

Status Status::InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

Status Status::FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}

Status Status::NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}

Status Status::OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}

Status Status::Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}

Status Status::Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

Status Status::Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

Status Status::DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

Status Status::ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace freshen
