// Epoch-based reclamation for single-publisher / many-reader snapshot
// structures (the freshend serving daemon's RCU-style state store).
//
// The protocol has two sides:
//
//   Readers: call Pin() before touching the protected structure and Unpin()
//   when done (or hold an EpochPin on the stack). Pin advertises the current
//   global epoch in a per-reader slot; any object retired at an epoch >= the
//   advertised value stays alive until the slot clears. The pin fast path is
//   lock-free: one seq_cst store + one load, no CAS, no allocation. A retry
//   loop only triggers when a publication races the pin, and each retry means
//   the publisher made global progress, so readers never spin against an idle
//   publisher.
//
//   The publisher (exactly one thread at a time): Advance() opens a new
//   epoch, Retire(object, epoch) hands over ownership of a superseded object
//   tagged with the epoch in which it was replaced, and TryReclaim() frees
//   every retired object whose epoch is strictly below the minimum epoch any
//   reader currently advertises. Reclamation is deferred, never blocking:
//   the publisher calls TryReclaim opportunistically (after each publish and
//   on shutdown) and the last reader leaving a superseded epoch makes its
//   garbage collectible on the next call.
//
// Reader slots are a fixed-size array of cache-line-padded atomics claimed
// per thread on first pin (thread-local caching makes repeat pins free). If
// more than kMaxReaders distinct threads ever pin concurrently, surplus
// threads fall back to a shared overflow mutex — correctness is preserved,
// only their lock-freedom is lost (and freshen_serve_* gauges make the
// overflow visible to operators).
#ifndef FRESHEN_COMMON_EPOCH_H_
#define FRESHEN_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace freshen {

/// One reclamation domain: a global epoch counter, reader slots, and the
/// publisher's retire list. Thread-safe as described above; the retire-side
/// API (Advance/Retire/TryReclaim/DrainAll) must be called by one publisher
/// thread at a time.
class EpochDomain {
 public:
  /// Reader slots available before the overflow mutex kicks in.
  static constexpr size_t kMaxReaders = 64;

  /// Slot value meaning "not inside a read-side critical section".
  static constexpr uint64_t kIdle = ~uint64_t{0};

  EpochDomain();
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // ---- Reader side -------------------------------------------------------

  /// Enters a read-side critical section and returns the pinned epoch. Any
  /// object retired at an epoch >= the returned value is guaranteed to stay
  /// alive until the matching Unpin(). Pins do not nest (one critical
  /// section per thread at a time); EpochPin enforces that statically.
  uint64_t Pin();

  /// Leaves the read-side critical section opened by the last Pin() on this
  /// thread.
  void Unpin();

  // ---- Publisher side ----------------------------------------------------

  /// Opens a new epoch and returns it. The first epoch returned is 1 (epoch
  /// 0 is the pre-publication era).
  uint64_t Advance();

  /// Transfers ownership of a superseded object to the domain. `deleter` is
  /// invoked once no reader can hold an epoch <= `retire_epoch` — i.e. the
  /// object was current up to (and including) `retire_epoch`. Publisher
  /// thread only.
  void Retire(uint64_t retire_epoch, std::function<void()> deleter);

  /// Frees every retired object whose retire epoch is strictly below the
  /// minimum epoch advertised by any pinned reader. Returns the number of
  /// objects reclaimed. Publisher thread only.
  size_t TryReclaim();

  /// Blocks (spinning with yields) until all readers have left, then frees
  /// everything retired. Shutdown path; publisher thread only.
  size_t DrainAll();

  // ---- Introspection -----------------------------------------------------

  /// The current epoch (0 before the first Advance).
  uint64_t CurrentEpoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Minimum epoch any reader currently advertises (kIdle when no reader is
  /// pinned). A publisher may reclaim strictly below this.
  uint64_t MinPinnedEpoch() const;

  /// Readers currently inside a critical section (approximate: each slot is
  /// sampled independently).
  size_t PinnedReaders() const;

  /// Retired objects not yet reclaimed.
  size_t RetiredCount() const { return retired_.size(); }

  /// Distinct threads that ever claimed a reader slot (caps at kMaxReaders;
  /// later threads use the overflow path).
  size_t ClaimedSlots() const {
    const size_t claimed = claimed_slots_.load(std::memory_order_relaxed);
    return claimed < kMaxReaders ? claimed : kMaxReaders;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  struct Retired {
    uint64_t epoch = 0;
    std::function<void()> deleter;
  };

  // Returns this thread's slot in this domain, claiming one on first use;
  // nullptr when all slots are taken (overflow path).
  Slot* ThreadSlot();

  std::atomic<uint64_t> epoch_{0};
  std::vector<Slot> slots_;
  // Process-unique id keying the thread-local slot caches; a cache entry for
  // a destroyed domain can never match a live one.
  uint64_t id_ = 0;
  std::atomic<size_t> claimed_slots_{0};

  // Overflow path: threads beyond kMaxReaders serialize on this mutex and
  // count themselves in overflow_pins_ (blocks TryReclaim entirely while
  // held, which is safe because it is also what the mutex excludes).
  std::mutex overflow_mu_;
  std::atomic<size_t> overflow_pins_{0};

  // Publisher-only state (single publisher contract).
  std::vector<Retired> retired_;
};

/// RAII read-side critical section: pins on construction, unpins on
/// destruction.
class EpochPin {
 public:
  explicit EpochPin(EpochDomain& domain) : domain_(&domain) {
    epoch_ = domain_->Pin();
  }
  ~EpochPin() { domain_->Unpin(); }

  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

  /// The epoch this pin protects (objects retired at >= this stay alive).
  uint64_t epoch() const { return epoch_; }

 private:
  EpochDomain* domain_;
  uint64_t epoch_ = 0;
};

}  // namespace freshen

#endif  // FRESHEN_COMMON_EPOCH_H_
