// Aligned plain-text tables and CSV output. Every bench binary prints its
// paper table/figure series through this so outputs are uniform and easy to
// diff against the paper.
#ifndef FRESHEN_COMMON_TABLE_WRITER_H_
#define FRESHEN_COMMON_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace freshen {

/// Collects rows of string cells and renders them either as an aligned text
/// table (for humans) or CSV (for plotting scripts).
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row. The row is padded with empty cells (or truncated) to the
  /// header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats every value with `precision` decimal digits.
  void AddNumericRow(const std::vector<double>& values, int precision = 4);

  /// Number of data rows added so far.
  size_t num_rows() const { return rows_.size(); }

  /// Renders an aligned text table with a header separator.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (fields containing comma/quote/newline are
  /// quoted).
  std::string ToCsv() const;

  /// Writes ToText() to the stream.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace freshen

#endif  // FRESHEN_COMMON_TABLE_WRITER_H_
