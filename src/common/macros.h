// Low-level macros shared by every freshen module.
#ifndef FRESHEN_COMMON_MACROS_H_
#define FRESHEN_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Marks a branch as unlikely for the optimizer.
#define FRESHEN_PREDICT_FALSE(x) (__builtin_expect(false || (x), false))
/// Marks a branch as likely for the optimizer.
#define FRESHEN_PREDICT_TRUE(x) (__builtin_expect(false || (x), true))

/// Aborts the process with a message when `condition` is false. Active in all
/// build types: these guard invariants whose violation would silently corrupt
/// experiment results.
#define FRESHEN_CHECK(condition)                                              \
  do {                                                                        \
    if (FRESHEN_PREDICT_FALSE(!(condition))) {                                \
      std::fprintf(stderr, "FRESHEN_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

/// Like FRESHEN_CHECK but compiled out of release builds. Use for hot paths.
#ifdef NDEBUG
#define FRESHEN_DCHECK(condition) \
  do {                            \
  } while (false)
#else
#define FRESHEN_DCHECK(condition) FRESHEN_CHECK(condition)
#endif

/// Evaluates an expression returning freshen::Status and propagates failure.
#define FRESHEN_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::freshen::Status _status = (expr);               \
    if (FRESHEN_PREDICT_FALSE(!_status.ok())) {       \
      return _status;                                 \
    }                                                 \
  } while (false)

/// Evaluates an expression returning freshen::Result<T>, propagating failure
/// and otherwise moving the value into `lhs`.
#define FRESHEN_ASSIGN_OR_RETURN(lhs, expr)          \
  FRESHEN_ASSIGN_OR_RETURN_IMPL(                     \
      FRESHEN_MACRO_CONCAT(_result_, __LINE__), lhs, expr)

#define FRESHEN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (FRESHEN_PREDICT_FALSE(!tmp.ok())) {             \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#define FRESHEN_MACRO_CONCAT_INNER(a, b) a##b
#define FRESHEN_MACRO_CONCAT(a, b) FRESHEN_MACRO_CONCAT_INNER(a, b)

#endif  // FRESHEN_COMMON_MACROS_H_
