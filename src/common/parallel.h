// freshen::par — deterministic data-parallel primitives for the compute
// spine (solvers, k-means, simulator). Built on common/thread_pool.h.
//
// The determinism contract (the same one the sync executor's two-phase
// commit established): results are BIT-IDENTICAL across thread counts.
// It is achieved structurally, not by locking:
//
//   * Shard boundaries are a pure function of the problem size n — never of
//     the thread count. ShardPlan(n) always produces the same contiguous
//     [begin, end) ranges, so every element is processed inside the same
//     shard no matter how many workers run.
//   * Reductions keep one Kahan accumulator per shard; each shard sums its
//     elements in index order, and the per-shard totals are combined in
//     shard-index order by the calling thread after the join. The float
//     summation tree is therefore fixed; threads only decide *when* each
//     shard runs, never *what* it computes.
//   * Writes are per-element into disjoint ranges; no shared mutable state.
//
// The thread count is purely an execution knob: Executor(1) runs the exact
// same shard plan inline on the caller, Executor(8) spreads the shards over
// the shared pool, and both produce byte-identical outputs.
#ifndef FRESHEN_COMMON_PARALLEL_H_
#define FRESHEN_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

#include "common/timer.h"
#include "stats/descriptive.h"

namespace freshen {

class ThreadPool;

namespace par {

/// Minimum elements per shard. Problems at or below this size run as a
/// single shard, which makes their reductions byte-identical to a plain
/// sequential Kahan sum (so small tests and workloads are unaffected by
/// sharding).
inline constexpr size_t kShardGrain = 4096;

/// Hard cap on shards per region. 64 shards over <= 16 workers keeps the
/// dynamic scheduler's load balance good even on skewed per-element costs
/// while bounding per-region bookkeeping.
inline constexpr size_t kMaxShards = 64;

/// Shard sizing for transcendental-bound loops (the solvers' kernel
/// inversions, ~100ns/element): work per element is ~100x a plain
/// reduction's, so shards amortize their scheduling overhead at 1/4 the
/// grain, and the 64-shard cap — sized for memory-bound loops where extra
/// shards only add bookkeeping — would leave giant shards (and idle
/// workers) on multi-million-element active sets. 512 shards keeps
/// per-shard work >= ~0.1ms at any size that matters.
inline constexpr size_t kTranscendentalGrain = 1024;
inline constexpr size_t kTranscendentalMaxShards = 512;

/// One contiguous slice [begin, end) of the index space.
struct Shard {
  size_t index = 0;
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
};

/// std::thread::hardware_concurrency(), never less than 1.
size_t HardwareThreads();

/// Number of shards for an n-element region: clamp(n / grain, 1,
/// max_shards); 0 for n == 0. Depends only on the arguments — never on the
/// thread count — which is what keeps plans (and thus reduction trees)
/// stable across executors.
size_t ShardCountFor(size_t n, size_t grain, size_t max_shards);

/// The fixed shard plan for n elements under (grain, max_shards):
/// ShardCountFor contiguous ranges whose sizes differ by at most one
/// (larger shards first). Callers with transcendental-bound bodies should
/// pass (kTranscendentalGrain, kTranscendentalMaxShards); note the plan is
/// part of any reduction's summation tree, so a consumer that documents
/// bit-stability must pick ONE plan per value and stick with it.
std::vector<Shard> ShardPlanFor(size_t n, size_t grain, size_t max_shards);

/// ShardCountFor(n, kShardGrain, kMaxShards): the default memory-bound
/// sizing used by Executor's ForEach/Sum/Max.
size_t ShardCount(size_t n);

/// ShardPlanFor(n, kShardGrain, kMaxShards).
std::vector<Shard> ShardPlan(size_t n);

/// Index of the shard that owns element i under ShardPlan(n). Requires
/// i < n. O(1); consistent with ShardPlan by construction.
size_t ShardIndexOf(size_t n, size_t i);

namespace detail {

/// The process-wide pool every Executor schedules onto. Lazily started;
/// sized max(HardwareThreads(), 8) so thread-count sweeps up to 8 exercise
/// real concurrency even on narrow CI machines.
ThreadPool& SharedPool();

/// Records one pooled region in the freshen_par_* metrics.
void RecordRegion(size_t shards, size_t tasks, double wall_seconds,
                  double busy_seconds);

/// Records one region that ran inline (single task).
void RecordInlineRegion(size_t shards);

}  // namespace detail

/// Joins a batch of closures submitted to the shared pool. Spawn() falls
/// back to running the closure inline when the pool queue is full, so a
/// group's completion never depends on pool capacity. Join() (and the
/// destructor) block until every spawned closure finished.
class TaskGroup {
 public:
  TaskGroup() = default;
  ~TaskGroup() { Join(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `fn` to the shared pool; runs it inline on submit failure.
  void Spawn(std::function<void()> fn);

  /// Blocks until all spawned closures completed.
  void Join();

 private:
  void Finish();

  std::mutex mu_;
  std::condition_variable done_;
  size_t outstanding_ = 0;
};

/// A thread-count knob bound to the shared pool. Cheap to construct (no
/// threads are owned); pass 0 for hardware concurrency.
class Executor {
 public:
  explicit Executor(size_t threads = 0);

  /// Effective worker count (>= 1).
  size_t threads() const { return threads_; }

  /// Runs fn(shard) for every shard in `plan`, blocking until all are done.
  /// With threads() == 1 (or a single shard) everything runs inline on the
  /// caller; otherwise min(threads(), plan.size()) workers — the caller
  /// plus pool tasks — drain the shards through a dynamic queue. The shard
  /// execution *order* is nondeterministic; anything value-affecting must
  /// depend only on the shard contents.
  template <typename Fn>
  void ForShards(const std::vector<Shard>& plan, Fn&& fn) const {
    if (plan.empty()) return;
    const size_t tasks = threads_ < plan.size() ? threads_ : plan.size();
    if (tasks <= 1) {
      for (const Shard& shard : plan) fn(shard);
      detail::RecordInlineRegion(plan.size());
      return;
    }
    WallTimer wall;
    // The queue cursor gets its own cache line, and each worker's busy-time
    // slot gets one too: `next` is hammered by every worker, and adjacent
    // plain doubles would put all workers' writes on one line — false
    // sharing that serializes short shards (the N=2M 8-thread regression).
    struct alignas(64) PaddedCursor {
      std::atomic<size_t> value{0};
    } next;
    struct alignas(64) PaddedSeconds {
      double value = 0.0;
    };
    std::vector<PaddedSeconds> busy(tasks);
    auto drain = [&](size_t slot) {
      WallTimer timer;
      for (size_t j = next.value.fetch_add(1, std::memory_order_relaxed);
           j < plan.size();
           j = next.value.fetch_add(1, std::memory_order_relaxed)) {
        fn(plan[j]);
      }
      busy[slot].value = timer.ElapsedSeconds();
    };
    {
      TaskGroup group;
      for (size_t slot = 1; slot < tasks; ++slot) {
        group.Spawn([&drain, slot] { drain(slot); });
      }
      drain(0);
      group.Join();
    }
    double busy_total = 0.0;
    for (const PaddedSeconds& seconds : busy) busy_total += seconds.value;
    detail::RecordRegion(plan.size(), tasks, wall.ElapsedSeconds(),
                         busy_total);
  }

  /// Runs fn(i) for every i in [0, n) under ShardPlan(n). Use for
  /// independent per-element writes (disjoint outputs only).
  template <typename Fn>
  void ForEach(size_t n, Fn&& fn) const {
    ForShards(ShardPlan(n), [&fn](const Shard& shard) {
      for (size_t i = shard.begin; i < shard.end; ++i) fn(i);
    });
  }

  /// Deterministic reduction: sum of term(i) over [0, n), one Kahan
  /// accumulator per shard (elements in index order), per-shard totals
  /// Kahan-combined in shard order. Bit-identical for every thread count;
  /// for n <= kShardGrain it equals the plain sequential Kahan sum.
  template <typename TermFn>
  double Sum(size_t n, TermFn term) const {
    const std::vector<Shard> plan = ShardPlan(n);
    if (plan.empty()) return 0.0;
    std::vector<double> partial(plan.size(), 0.0);
    ForShards(plan, [&](const Shard& shard) {
      KahanSum acc;
      for (size_t i = shard.begin; i < shard.end; ++i) acc.Add(term(i));
      partial[shard.index] = acc.Total();
    });
    KahanSum total;
    for (double value : partial) total.Add(value);
    return total.Total();
  }

  /// Deterministic max of term(i) over [0, n); `init` seeds every shard
  /// (and is returned for n == 0). term must not produce NaN.
  template <typename TermFn>
  double Max(size_t n, TermFn term, double init) const {
    const std::vector<Shard> plan = ShardPlan(n);
    if (plan.empty()) return init;
    std::vector<double> partial(plan.size(), init);
    ForShards(plan, [&](const Shard& shard) {
      double best = init;
      for (size_t i = shard.begin; i < shard.end; ++i) {
        const double value = term(i);
        if (value > best) best = value;
      }
      partial[shard.index] = best;
    });
    double best = init;
    for (double value : partial) {
      if (value > best) best = value;
    }
    return best;
  }

 private:
  size_t threads_;
};

}  // namespace par
}  // namespace freshen

#endif  // FRESHEN_COMMON_PARALLEL_H_
