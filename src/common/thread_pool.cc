#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace freshen {

ThreadPool::ThreadPool(Options options)
    : queue_capacity_(std::max<size_t>(1, options.queue_capacity)) {
  const size_t num_threads = std::max<size_t>(1, options.num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Drain before stopping: a submitted task always runs.
    all_idle_.wait(lock,
                   [this] { return queue_.empty() && active_tasks_ == 0; });
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

Status ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("thread pool is shutting down");
    }
    if (queue_.size() >= queue_capacity_) {
      return Status::ResourceExhausted("thread pool queue is full");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return Status::OK();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && active_tasks_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace freshen
