// Compact binary catalog format ("FRSHCAT1") with zero-copy mmap loading.
//
// CSV (io/catalog_io.h) is the interchange format; this is the serving
// format: at production catalog sizes (10^6..10^8 elements) strtod-parsing
// CSV dominates daemon startup, while the binary file maps straight into
// column vectors the solver and serving layers can read in place.
//
// File layout (all integers little-endian, doubles IEEE-754 little-endian):
//
//   FileHeader (32 bytes)
//     magic[8]        "FRSHCAT1"
//     u32 version     1
//     u32 num_sections
//     u64 num_elements
//     u32 reserved    0
//     u32 header_crc  CRC-32 of the preceding 28 header bytes
//   SectionEntry x num_sections (32 bytes each)
//     u32 kind        1 = change_rate, 2 = access_prob, 3 = size
//     u32 reserved    0
//     u64 offset      payload start, from file start; 8-byte aligned
//     u64 length      payload bytes (= num_elements * 8)
//     u32 payload_crc CRC-32 of the payload bytes
//     u32 reserved2   0
//   Payloads: contiguous f64 arrays (structure-of-arrays).
//
// Every load verifies magic, version, both CRCs, section bounds, and value
// domains (finite, rate >= 0, prob in [0, 1], size > 0), so a truncated or
// bit-flipped file is an InvalidArgument, never garbage elements.
#ifndef FRESHEN_IO_CATALOG_BINARY_H_
#define FRESHEN_IO_CATALOG_BINARY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "model/element.h"

namespace freshen {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of a byte range. Exposed for
/// tests that corrupt files deliberately.
uint32_t Crc32(const void* data, size_t size);

/// Serializes a catalog into the binary format.
std::string CatalogToBinary(const ElementSet& elements);

/// Writes a catalog to a binary file.
Status SaveCatalogBinary(const ElementSet& elements, const std::string& path);

/// Parses the binary format from an in-memory buffer (copying).
Result<ElementSet> ParseCatalogBinary(const void* data, size_t size);

/// Loads a binary catalog file (via mmap, then copies into the ElementSet).
Result<ElementSet> LoadCatalogBinary(const std::string& path);

/// True when the first bytes of `path` carry the FRSHCAT1 magic — lets
/// callers auto-detect binary vs CSV catalogs.
bool LooksLikeBinaryCatalog(const std::string& path);

/// A binary catalog mapped read-only into memory. The column accessors
/// return pointers directly into the mapping — zero copies, zero parsing —
/// valid for the lifetime of this object. Move-only; unmaps on destruction.
class MmapCatalog {
 public:
  /// Maps and fully validates `path` (headers, CRCs, value domains).
  static Result<MmapCatalog> Open(const std::string& path);

  MmapCatalog(MmapCatalog&& other) noexcept;
  MmapCatalog& operator=(MmapCatalog&& other) noexcept;
  MmapCatalog(const MmapCatalog&) = delete;
  MmapCatalog& operator=(const MmapCatalog&) = delete;
  ~MmapCatalog();

  size_t size() const { return num_elements_; }
  const double* change_rates() const { return change_rates_; }
  const double* access_probs() const { return access_probs_; }
  const double* sizes() const { return sizes_; }

  /// Copies the mapped columns into an owned ElementSet.
  ElementSet ToElementSet() const;

 private:
  MmapCatalog() = default;

  void* mapping_ = nullptr;
  size_t mapping_size_ = 0;
  size_t num_elements_ = 0;
  const double* change_rates_ = nullptr;
  const double* access_probs_ = nullptr;
  const double* sizes_ = nullptr;
};

}  // namespace freshen

#endif  // FRESHEN_IO_CATALOG_BINARY_H_
