#include "io/catalog_binary.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"
#include "io/catalog_io.h"

namespace freshen {
namespace {

static_assert(sizeof(double) == 8, "binary catalog assumes 8-byte doubles");

// The format is defined little-endian; this toolchain targets x86-64 /
// aarch64, both little-endian, so serialization is memcpy. The static
// assert keeps a big-endian port from silently writing byte-swapped files.
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "binary catalog writer requires a little-endian target");

constexpr char kMagic[8] = {'F', 'R', 'S', 'H', 'C', 'A', 'T', '1'};
constexpr uint32_t kVersion = 1;

enum SectionKind : uint32_t {
  kSectionChangeRate = 1,
  kSectionAccessProb = 2,
  kSectionSize = 3,
};

#pragma pack(push, 1)
struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t num_sections;
  uint64_t num_elements;
  uint32_t reserved;
  uint32_t header_crc;  // CRC of the 28 bytes preceding this field.
};
struct SectionEntry {
  uint32_t kind;
  uint32_t reserved;
  uint64_t offset;
  uint64_t length;
  uint32_t payload_crc;
  uint32_t reserved2;
};
#pragma pack(pop)
static_assert(sizeof(FileHeader) == 32, "header layout drifted");
static_assert(sizeof(SectionEntry) == 32, "section layout drifted");

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[k][b] extends a byte that still has k more zero bytes behind it.
// Processing 8 input bytes per iteration keeps CRC validation well under
// the cost of parsing the same catalog as CSV (the mmap-load speedup the
// serving bench gates on).
using Crc32Tables = uint32_t[8][256];

const Crc32Tables& Crc32Table() {
  static const Crc32Tables& tables = [] () -> const Crc32Tables& {
    static Crc32Tables t;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
    return t;
  }();
  return tables;
}

Status ValidateColumn(SectionKind kind, const double* values, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double v = values[i];
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          StrFormat("element %zu: non-finite value in section %u", i,
                    static_cast<unsigned>(kind)));
    }
    switch (kind) {
      case kSectionChangeRate:
        if (v < 0.0) {
          return Status::InvalidArgument(
              StrFormat("element %zu: change_rate must be >= 0", i));
        }
        break;
      case kSectionAccessProb:
        if (v < 0.0 || v > 1.0) {
          return Status::InvalidArgument(
              StrFormat("element %zu: access_prob must be in [0, 1]", i));
        }
        break;
      case kSectionSize:
        if (!(v > 0.0)) {
          return Status::InvalidArgument(
              StrFormat("element %zu: size must be > 0", i));
        }
        break;
    }
  }
  return Status::OK();
}

struct ParsedColumns {
  size_t num_elements = 0;
  const double* change_rates = nullptr;
  const double* access_probs = nullptr;
  const double* sizes = nullptr;
};

// Shared validation core: checks every structural and domain invariant and
// returns pointers into `data`. Used by both the copying loader and the
// zero-copy mmap loader.
Result<ParsedColumns> ValidateCatalogBinary(const void* data, size_t size) {
  const char* bytes = static_cast<const char*>(data);
  if (size < sizeof(FileHeader)) {
    return Status::InvalidArgument(
        StrFormat("file too small for header (%zu bytes)", size));
  }
  FileHeader header;
  std::memcpy(&header, bytes, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic (not a FRSHCAT1 catalog)");
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported version %u (expected %u)", header.version,
                  kVersion));
  }
  const uint32_t expected_crc =
      Crc32(bytes, offsetof(FileHeader, header_crc));
  if (header.header_crc != expected_crc) {
    return Status::InvalidArgument("header checksum mismatch");
  }
  if (header.num_sections != 3) {
    return Status::InvalidArgument(
        StrFormat("expected 3 sections, found %u", header.num_sections));
  }
  const uint64_t n = header.num_elements;
  const uint64_t table_end =
      sizeof(FileHeader) + header.num_sections * sizeof(SectionEntry);
  if (size < table_end) {
    return Status::InvalidArgument("file truncated inside section table");
  }

  ParsedColumns columns;
  columns.num_elements = static_cast<size_t>(n);
  for (uint32_t s = 0; s < header.num_sections; ++s) {
    SectionEntry entry;
    std::memcpy(&entry, bytes + sizeof(FileHeader) + s * sizeof(entry),
                sizeof(entry));
    if (entry.length != n * sizeof(double)) {
      return Status::InvalidArgument(
          StrFormat("section %u: length %llu != %llu elements * 8", entry.kind,
                    static_cast<unsigned long long>(entry.length),
                    static_cast<unsigned long long>(n)));
    }
    if (entry.offset % alignof(double) != 0) {
      return Status::InvalidArgument(
          StrFormat("section %u: offset not 8-byte aligned", entry.kind));
    }
    if (entry.offset < table_end || entry.offset > size ||
        entry.length > size - entry.offset) {
      return Status::InvalidArgument(
          StrFormat("section %u: range [%llu, +%llu) outside file", entry.kind,
                    static_cast<unsigned long long>(entry.offset),
                    static_cast<unsigned long long>(entry.length)));
    }
    const char* payload = bytes + entry.offset;
    if (Crc32(payload, entry.length) != entry.payload_crc) {
      return Status::InvalidArgument(
          StrFormat("section %u: payload checksum mismatch", entry.kind));
    }
    const double* values = reinterpret_cast<const double*>(payload);
    const auto kind = static_cast<SectionKind>(entry.kind);
    FRESHEN_RETURN_IF_ERROR(
        ValidateColumn(kind, values, columns.num_elements));
    switch (kind) {
      case kSectionChangeRate:
        columns.change_rates = values;
        break;
      case kSectionAccessProb:
        columns.access_probs = values;
        break;
      case kSectionSize:
        columns.sizes = values;
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unknown section kind %u", entry.kind));
    }
  }
  if (columns.change_rates == nullptr || columns.access_probs == nullptr ||
      columns.sizes == nullptr) {
    return Status::InvalidArgument("missing a required section");
  }
  return columns;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const Crc32Tables& table = Crc32Table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  // Eight bytes per iteration (slicing-by-8). The payloads are 8-aligned
  // by construction, but memcpy keeps the fast path valid for any input.
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, bytes, 8);
    chunk ^= crc;  // Little-endian: the CRC folds into the low 4 bytes.
    crc = table[7][chunk & 0xFFu] ^ table[6][(chunk >> 8) & 0xFFu] ^
          table[5][(chunk >> 16) & 0xFFu] ^ table[4][(chunk >> 24) & 0xFFu] ^
          table[3][(chunk >> 32) & 0xFFu] ^ table[2][(chunk >> 40) & 0xFFu] ^
          table[1][(chunk >> 48) & 0xFFu] ^ table[0][(chunk >> 56) & 0xFFu];
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[0][(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string CatalogToBinary(const ElementSet& elements) {
  const size_t n = elements.size();
  const size_t column_bytes = n * sizeof(double);
  const size_t table_end = sizeof(FileHeader) + 3 * sizeof(SectionEntry);
  std::string out(table_end + 3 * column_bytes, '\0');

  const std::vector<double> columns[3] = {ChangeRates(elements),
                                          AccessProbs(elements),
                                          Sizes(elements)};
  const SectionKind kinds[3] = {kSectionChangeRate, kSectionAccessProb,
                                kSectionSize};
  for (int s = 0; s < 3; ++s) {
    const size_t offset = table_end + s * column_bytes;
    if (column_bytes > 0) {
      std::memcpy(&out[offset], columns[s].data(), column_bytes);
    }
    SectionEntry entry;
    std::memset(&entry, 0, sizeof(entry));
    entry.kind = kinds[s];
    entry.offset = offset;
    entry.length = column_bytes;
    entry.payload_crc = Crc32(out.data() + offset, column_bytes);
    std::memcpy(&out[sizeof(FileHeader) + s * sizeof(entry)], &entry,
                sizeof(entry));
  }

  FileHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.num_sections = 3;
  header.num_elements = n;
  std::memcpy(&out[0], &header, sizeof(header));
  // CRC covers the header bytes as they appear in the file.
  header.header_crc = Crc32(out.data(), offsetof(FileHeader, header_crc));
  std::memcpy(&out[0], &header, sizeof(header));
  return out;
}

Status SaveCatalogBinary(const ElementSet& elements,
                         const std::string& path) {
  return WriteStringToFile(CatalogToBinary(elements), path);
}

Result<ElementSet> ParseCatalogBinary(const void* data, size_t size) {
  FRESHEN_ASSIGN_OR_RETURN(ParsedColumns columns,
                           ValidateCatalogBinary(data, size));
  ElementSet elements(columns.num_elements);
  for (size_t i = 0; i < columns.num_elements; ++i) {
    elements[i].change_rate = columns.change_rates[i];
    elements[i].access_prob = columns.access_probs[i];
    elements[i].size = columns.sizes[i];
  }
  return elements;
}

Result<ElementSet> LoadCatalogBinary(const std::string& path) {
  FRESHEN_ASSIGN_OR_RETURN(MmapCatalog mapped, MmapCatalog::Open(path));
  return mapped.ToElementSet();
}

bool LooksLikeBinaryCatalog(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char magic[8] = {};
  const size_t got = std::fread(magic, 1, sizeof(magic), file);
  std::fclose(file);
  return got == sizeof(magic) &&
         std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

Result<MmapCatalog> MmapCatalog::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(
        StrFormat("%s: %s", path.c_str(), std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(
        StrFormat("%s: fstat: %s", path.c_str(), std::strerror(err)));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument(path + ": empty file");
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (mapping == MAP_FAILED) {
    return Status::Internal(
        StrFormat("%s: mmap: %s", path.c_str(), std::strerror(errno)));
  }
  auto columns = ValidateCatalogBinary(mapping, size);
  if (!columns.ok()) {
    ::munmap(mapping, size);
    return Status(columns.status().code(),
                  path + ": " + columns.status().message());
  }
  MmapCatalog catalog;
  catalog.mapping_ = mapping;
  catalog.mapping_size_ = size;
  catalog.num_elements_ = columns->num_elements;
  catalog.change_rates_ = columns->change_rates;
  catalog.access_probs_ = columns->access_probs;
  catalog.sizes_ = columns->sizes;
  return catalog;
}

MmapCatalog::MmapCatalog(MmapCatalog&& other) noexcept
    : mapping_(other.mapping_),
      mapping_size_(other.mapping_size_),
      num_elements_(other.num_elements_),
      change_rates_(other.change_rates_),
      access_probs_(other.access_probs_),
      sizes_(other.sizes_) {
  other.mapping_ = nullptr;
  other.mapping_size_ = 0;
  other.num_elements_ = 0;
  other.change_rates_ = nullptr;
  other.access_probs_ = nullptr;
  other.sizes_ = nullptr;
}

MmapCatalog& MmapCatalog::operator=(MmapCatalog&& other) noexcept {
  if (this != &other) {
    if (mapping_ != nullptr) ::munmap(mapping_, mapping_size_);
    mapping_ = other.mapping_;
    mapping_size_ = other.mapping_size_;
    num_elements_ = other.num_elements_;
    change_rates_ = other.change_rates_;
    access_probs_ = other.access_probs_;
    sizes_ = other.sizes_;
    other.mapping_ = nullptr;
    other.mapping_size_ = 0;
    other.num_elements_ = 0;
    other.change_rates_ = nullptr;
    other.access_probs_ = nullptr;
    other.sizes_ = nullptr;
  }
  return *this;
}

MmapCatalog::~MmapCatalog() {
  if (mapping_ != nullptr) ::munmap(mapping_, mapping_size_);
}

ElementSet MmapCatalog::ToElementSet() const {
  ElementSet elements(num_elements_);
  for (size_t i = 0; i < num_elements_; ++i) {
    elements[i].change_rate = change_rates_[i];
    elements[i].access_prob = access_probs_[i];
    elements[i].size = sizes_[i];
  }
  return elements;
}

}  // namespace freshen
