// CSV import/export for catalogs, profiles, and plans, so libfreshen can be
// driven from real operational data (crawler statistics, request-log
// aggregations) without writing C++. Used by the freshenctl example tool.
//
// Catalog CSV format (header required, columns in any order, extras
// ignored):
//   [id,]change_rate,access_prob[,size]
// One row per element; `size` defaults to 1.0 when the column is absent.
// access_prob values are normalized on load, so raw access *counts* work
// equally well. When an `id` column is present it must hold unique
// non-negative integers — duplicates are rejected with the offending line
// numbers. Non-finite values (NaN/inf) and out-of-domain values (negative
// rates or probabilities, non-positive sizes) are rejected with the line
// number.
//
// For the compact binary serving format (mmap zero-copy load), see
// io/catalog_binary.h.
#ifndef FRESHEN_IO_CATALOG_IO_H_
#define FRESHEN_IO_CATALOG_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/element.h"

namespace freshen {

/// Parses a catalog from CSV text. See the file comment for the format.
Result<ElementSet> ParseCatalogCsv(const std::string& text);

/// Loads a catalog from a CSV file.
Result<ElementSet> LoadCatalogCsv(const std::string& path);

/// Renders a catalog as CSV text (header + one row per element).
std::string CatalogToCsv(const ElementSet& elements);

/// Writes a catalog to a CSV file.
Status SaveCatalogCsv(const ElementSet& elements, const std::string& path);

/// Renders a plan as CSV: element,frequency,interval,bandwidth.
std::string PlanToCsv(const ElementSet& elements,
                      const std::vector<double>& frequencies);

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (overwrites).
Status WriteStringToFile(const std::string& text, const std::string& path);

}  // namespace freshen

#endif  // FRESHEN_IO_CATALOG_IO_H_
