#include "io/catalog_io.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "common/string_util.h"
#include "profile/profile.h"

namespace freshen {
namespace {

// Finds a column index by (trimmed, lowercased) header name, or -1.
int FindColumn(const std::vector<std::string>& header,
               const std::string& name) {
  for (size_t c = 0; c < header.size(); ++c) {
    std::string cell = header[c];
    // Trim whitespace and lowercase.
    size_t begin = cell.find_first_not_of(" \t\r");
    size_t end = cell.find_last_not_of(" \t\r");
    cell = begin == std::string::npos ? "" : cell.substr(begin, end - begin + 1);
    for (char& ch : cell) {
      if (ch >= 'A' && ch <= 'Z') ch = static_cast<char>(ch - 'A' + 'a');
    }
    if (cell == name) return static_cast<int>(c);
  }
  return -1;
}

Result<double> ParseNumber(const std::string& cell, size_t line, int column) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str()) {
    return Status::InvalidArgument(
        StrFormat("line %zu column %d: cannot parse \"%s\" as a number",
                  line, column + 1, cell.c_str()));
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    // NaN and +-inf parse as numbers but are never valid catalog values;
    // say so instead of the generic "cannot parse".
    return Status::InvalidArgument(
        StrFormat("line %zu column %d: \"%s\" is not a finite number",
                  line, column + 1, cell.c_str()));
  }
  return value;
}

// Parses the optional id column: a non-negative integer element id.
Result<uint64_t> ParseElementId(const std::string& cell, size_t line,
                                int column) {
  const std::string trimmed = [&] {
    const size_t begin = cell.find_first_not_of(" \t\r");
    const size_t end = cell.find_last_not_of(" \t\r");
    return begin == std::string::npos ? std::string()
                                      : cell.substr(begin, end - begin + 1);
  }();
  errno = 0;
  char* end = nullptr;
  const unsigned long long value =
      std::strtoull(trimmed.c_str(), &end, 10);
  if (trimmed.empty() || end != trimmed.c_str() + trimmed.size() ||
      errno == ERANGE || trimmed[0] == '-') {
    return Status::InvalidArgument(StrFormat(
        "line %zu column %d: \"%s\" is not a valid element id "
        "(expected a non-negative integer)",
        line, column + 1, cell.c_str()));
  }
  return static_cast<uint64_t>(value);
}

}  // namespace

Result<ElementSet> ParseCatalogCsv(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  // Drop trailing blank lines.
  while (!lines.empty() && lines.back().find_first_not_of(" \t\r") ==
                               std::string::npos) {
    lines.pop_back();
  }
  if (lines.size() < 2) {
    return Status::InvalidArgument(
        "catalog CSV needs a header and at least one data row");
  }
  const std::vector<std::string> header = Split(lines[0], ',');
  const int rate_col = FindColumn(header, "change_rate");
  const int prob_col = FindColumn(header, "access_prob");
  const int size_col = FindColumn(header, "size");
  const int id_col = FindColumn(header, "id");
  if (rate_col < 0 || prob_col < 0) {
    return Status::InvalidArgument(
        "catalog CSV header must contain change_rate and access_prob");
  }

  std::vector<double> rates;
  std::vector<double> probs;
  std::vector<double> sizes;
  // id -> first line that declared it, for duplicate diagnostics.
  std::unordered_map<uint64_t, size_t> seen_ids;
  for (size_t line = 1; line < lines.size(); ++line) {
    if (lines[line].find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // Skip interior blank lines.
    }
    const std::vector<std::string> cells = Split(lines[line], ',');
    const int needed =
        std::max(std::max(std::max(rate_col, prob_col), size_col), id_col);
    if (static_cast<int>(cells.size()) <= needed) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected at least %d columns, got %zu",
                    line + 1, needed + 1, cells.size()));
    }
    if (id_col >= 0) {
      FRESHEN_ASSIGN_OR_RETURN(
          uint64_t id, ParseElementId(cells[id_col], line + 1, id_col));
      const auto [it, inserted] = seen_ids.emplace(id, line + 1);
      if (!inserted) {
        return Status::InvalidArgument(StrFormat(
            "line %zu: duplicate element id %llu (first declared on line "
            "%zu)",
            line + 1, static_cast<unsigned long long>(id), it->second));
      }
    }
    FRESHEN_ASSIGN_OR_RETURN(double rate,
                             ParseNumber(cells[rate_col], line + 1, rate_col));
    FRESHEN_ASSIGN_OR_RETURN(double prob,
                             ParseNumber(cells[prob_col], line + 1, prob_col));
    if (rate < 0.0) {
      return Status::InvalidArgument(
          StrFormat("line %zu: change_rate must be >= 0", line + 1));
    }
    if (prob < 0.0) {
      return Status::InvalidArgument(
          StrFormat("line %zu: access_prob must be >= 0", line + 1));
    }
    rates.push_back(rate);
    probs.push_back(prob);
    if (size_col >= 0) {
      FRESHEN_ASSIGN_OR_RETURN(
          double size, ParseNumber(cells[size_col], line + 1, size_col));
      if (!(size > 0.0)) {
        return Status::InvalidArgument(
            StrFormat("line %zu: size must be > 0", line + 1));
      }
      sizes.push_back(size);
    }
  }
  // Normalize raw counts/weights into probabilities.
  FRESHEN_ASSIGN_OR_RETURN(probs, NormalizeProbabilities(std::move(probs)));
  return MakeElementSet(rates, probs, sizes);
}

Result<ElementSet> LoadCatalogCsv(const std::string& path) {
  FRESHEN_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  auto catalog = ParseCatalogCsv(text);
  if (!catalog.ok()) {
    return Status(catalog.status().code(),
                  path + ": " + catalog.status().message());
  }
  return catalog;
}

std::string CatalogToCsv(const ElementSet& elements) {
  std::string out = "change_rate,access_prob,size\n";
  for (const Element& e : elements) {
    out += StrFormat("%.17g,%.17g,%.17g\n", e.change_rate, e.access_prob,
                     e.size);
  }
  return out;
}

Status SaveCatalogCsv(const ElementSet& elements, const std::string& path) {
  return WriteStringToFile(CatalogToCsv(elements), path);
}

std::string PlanToCsv(const ElementSet& elements,
                      const std::vector<double>& frequencies) {
  std::string out = "element,frequency,interval,bandwidth\n";
  for (size_t i = 0; i < frequencies.size(); ++i) {
    const double f = frequencies[i];
    const double size = i < elements.size() ? elements[i].size : 1.0;
    out += StrFormat("%zu,%.10g,%.10g,%.10g\n", i, f,
                     f > 0.0 ? 1.0 / f : 0.0, f * size);
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound(
        StrFormat("%s: %s", path.c_str(), std::strerror(errno)));
  }
  std::string out;
  char buffer[1 << 16];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out.append(buffer, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::Internal(StrFormat("%s: read error", path.c_str()));
  }
  return out;
}

Status WriteStringToFile(const std::string& text, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument(
        StrFormat("%s: %s", path.c_str(), std::strerror(errno)));
  }
  const size_t wrote = std::fwrite(text.data(), 1, text.size(), file);
  const bool failed = wrote != text.size() || std::fclose(file) != 0;
  if (failed) {
    return Status::Internal(StrFormat("%s: write error", path.c_str()));
  }
  return Status::OK();
}

}  // namespace freshen
