#include "profile/learner.h"

#include "common/macros.h"
#include "profile/profile.h"

namespace freshen {

AccessLogLearner::AccessLogLearner(size_t num_elements, Options options)
    : options_(options), counts_(num_elements, 0.0) {
  FRESHEN_CHECK(num_elements > 0);
  FRESHEN_CHECK(options.decay > 0.0 && options.decay <= 1.0);
  FRESHEN_CHECK(options.smoothing >= 0.0);
}

void AccessLogLearner::Observe(size_t element) {
  FRESHEN_CHECK(element < counts_.size());
  counts_[element] += 1.0;
  total_ += 1.0;
  ++observations_;
}

void AccessLogLearner::EndPeriod() {
  if (options_.decay >= 1.0) return;
  for (double& c : counts_) c *= options_.decay;
  total_ *= options_.decay;
}

Result<std::vector<double>> AccessLogLearner::Snapshot() const {
  std::vector<double> weights(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    weights[i] = counts_[i] + options_.smoothing;
  }
  return NormalizeProbabilities(std::move(weights));
}

}  // namespace freshen
