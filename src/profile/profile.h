// User profiles and their aggregation into the master profile (paper §2).
// A profile is "a declarative specification of the relative importance of
// each copy in the mirror" — operationally, an access-frequency distribution.
// The mirror aggregates all user profiles (optionally weighted, e.g. to favor
// "generals or higher paying customers") into one master profile that drives
// scheduling.
#ifndef FRESHEN_PROFILE_PROFILE_H_
#define FRESHEN_PROFILE_PROFILE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace freshen {

/// One user's interest distribution over the mirror's N elements.
class UserProfile {
 public:
  /// Builds a profile from non-negative interest weights (one per element).
  /// Weights need not be normalized. Fails when empty, when any weight is
  /// negative/non-finite, or when all weights are zero.
  static Result<UserProfile> FromWeights(std::vector<double> weights);

  /// Builds a profile from raw access counts observed for this user.
  static Result<UserProfile> FromAccessCounts(
      const std::vector<size_t>& counts);

  /// Normalized access probabilities; sums to 1.
  const std::vector<double>& probabilities() const { return probs_; }

  /// Number of elements covered.
  size_t size() const { return probs_.size(); }

 private:
  explicit UserProfile(std::vector<double> probs) : probs_(std::move(probs)) {}
  std::vector<double> probs_;
};

/// Aggregates user profiles into the master profile. `user_weights` scales
/// each user's contribution (empty means equal weight). All profiles must
/// cover the same number of elements; weights must be non-negative with a
/// positive total. The result sums to 1.
Result<std::vector<double>> AggregateProfiles(
    const std::vector<UserProfile>& profiles,
    const std::vector<double>& user_weights = {});

/// Normalizes a non-negative weight vector to sum to 1. Fails on an empty
/// vector, negative/non-finite entries, or an all-zero vector.
Result<std::vector<double>> NormalizeProbabilities(std::vector<double> weights);

}  // namespace freshen

#endif  // FRESHEN_PROFILE_PROFILE_H_
