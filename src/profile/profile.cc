#include "profile/profile.h"

#include <cmath>

#include "common/string_util.h"
#include "stats/descriptive.h"

namespace freshen {

Result<std::vector<double>> NormalizeProbabilities(
    std::vector<double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("weight vector is empty");
  }
  KahanSum total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!(weights[i] >= 0.0) || !std::isfinite(weights[i])) {
      return Status::InvalidArgument(
          StrFormat("weight %zu is negative or non-finite", i));
    }
    total.Add(weights[i]);
  }
  if (total.Total() <= 0.0) {
    return Status::InvalidArgument("all weights are zero");
  }
  const double inv = 1.0 / total.Total();
  for (double& w : weights) w *= inv;
  return weights;
}

Result<UserProfile> UserProfile::FromWeights(std::vector<double> weights) {
  auto normalized = NormalizeProbabilities(std::move(weights));
  if (!normalized.ok()) return normalized.status();
  return UserProfile(std::move(normalized).value());
}

Result<UserProfile> UserProfile::FromAccessCounts(
    const std::vector<size_t>& counts) {
  std::vector<double> weights(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    weights[i] = static_cast<double>(counts[i]);
  }
  return FromWeights(std::move(weights));
}

Result<std::vector<double>> AggregateProfiles(
    const std::vector<UserProfile>& profiles,
    const std::vector<double>& user_weights) {
  if (profiles.empty()) {
    return Status::InvalidArgument("no profiles to aggregate");
  }
  if (!user_weights.empty() && user_weights.size() != profiles.size()) {
    return Status::InvalidArgument(StrFormat(
        "got %zu user weights for %zu profiles", user_weights.size(),
        profiles.size()));
  }
  const size_t n = profiles[0].size();
  std::vector<double> master(n, 0.0);
  for (size_t u = 0; u < profiles.size(); ++u) {
    if (profiles[u].size() != n) {
      return Status::InvalidArgument(
          StrFormat("profile %zu covers %zu elements, expected %zu", u,
                    profiles[u].size(), n));
    }
    const double w = user_weights.empty() ? 1.0 : user_weights[u];
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument(
          StrFormat("user weight %zu is negative or non-finite", u));
    }
    const auto& probs = profiles[u].probabilities();
    for (size_t i = 0; i < n; ++i) master[i] += w * probs[i];
  }
  return NormalizeProbabilities(std::move(master));
}

}  // namespace freshen
