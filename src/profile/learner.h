// Learning a master profile from the mirror's request log — the "simple
// learning algorithm that monitors the system request log" sketched in the
// paper's conclusion (§7). Counts accesses per element with optional
// exponential decay so interest shifts are tracked.
#ifndef FRESHEN_PROFILE_LEARNER_H_
#define FRESHEN_PROFILE_LEARNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace freshen {

/// Streaming estimator of the master profile from observed accesses.
class AccessLogLearner {
 public:
  struct Options {
    /// Per-period decay applied to historical counts in [0, 1]. 1.0 keeps all
    /// history (plain counting); smaller values favor recent interest.
    double decay = 1.0;
    /// Additive (Laplace) smoothing mass given to every element when taking
    /// a snapshot, so unaccessed elements keep a tiny nonzero probability.
    double smoothing = 0.0;
  };

  /// Creates a learner over `num_elements` elements.
  AccessLogLearner(size_t num_elements, Options options);

  /// Records one access to `element`. Must be < num_elements.
  void Observe(size_t element);

  /// Applies one decay step (call at period boundaries when decay < 1).
  void EndPeriod();

  /// Total (decayed) access mass recorded so far.
  double TotalMass() const { return total_; }

  /// Number of raw Observe() calls.
  uint64_t NumObservations() const { return observations_; }

  /// The current estimate of the master profile (sums to 1). Fails when no
  /// accesses were observed and smoothing is 0.
  Result<std::vector<double>> Snapshot() const;

 private:
  Options options_;
  std::vector<double> counts_;
  double total_ = 0.0;
  uint64_t observations_ = 0;
};

}  // namespace freshen

#endif  // FRESHEN_PROFILE_LEARNER_H_
