#include "rng/distributions.h"

#include <cmath>

#include "common/macros.h"

namespace freshen {

double SampleStandardNormal(Rng& rng) {
  // Marsaglia polar method; rejects ~21.5% of candidate pairs.
  while (true) {
    const double u = rng.NextDoubleIn(-1.0, 1.0);
    const double v = rng.NextDoubleIn(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double SampleExponential(Rng& rng, double rate) {
  FRESHEN_DCHECK(rate > 0.0);
  return -std::log(rng.NextDoublePositive()) / rate;
}

double SampleGamma(Rng& rng, double shape, double scale) {
  FRESHEN_DCHECK(shape > 0.0);
  FRESHEN_DCHECK(scale > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
    const double u = rng.NextDoublePositive();
    return SampleGamma(rng, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x;
    double v;
    do {
      x = SampleStandardNormal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.NextDoublePositive();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * scale;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double SampleGammaMeanStdDev(Rng& rng, double mean, double stddev) {
  FRESHEN_DCHECK(mean > 0.0);
  FRESHEN_DCHECK(stddev > 0.0);
  const double shape = (mean / stddev) * (mean / stddev);
  const double scale = stddev * stddev / mean;
  return SampleGamma(rng, shape, scale);
}

double SamplePareto(Rng& rng, double shape, double scale) {
  FRESHEN_DCHECK(shape > 0.0);
  FRESHEN_DCHECK(scale > 0.0);
  // Inverse CDF: x = x_m * U^{-1/a}.
  return scale * std::pow(rng.NextDoublePositive(), -1.0 / shape);
}

double ParetoScaleForMean(double shape, double mean) {
  FRESHEN_CHECK(shape > 1.0);
  return mean * (shape - 1.0) / shape;
}

uint64_t SamplePoisson(Rng& rng, double mean) {
  FRESHEN_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion in the log domain is unnecessary at this size; plain
    // multiplication of uniforms is safe because e^{-30} > DBL_MIN.
    const double limit = std::exp(-mean);
    uint64_t count = 0;
    double product = rng.NextDoublePositive();
    while (product > limit) {
      ++count;
      product *= rng.NextDoublePositive();
    }
    return count;
  }
  // Hoermann's PTRS transformed rejection (1993): valid for mean >= 10.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  while (true) {
    double u = rng.NextDouble() - 0.5;
    const double v = rng.NextDouble();
    const double us = 0.5 - std::fabs(u);
    const double k_real = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<uint64_t>(k_real);
    if (k_real < 0.0 || (us < 0.013 && v > us)) continue;
    const double k = k_real;
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        -mean + k * std::log(mean) - std::lgamma(k + 1.0)) {
      return static_cast<uint64_t>(k);
    }
  }
}

}  // namespace freshen
