// Zipfian access distributions. The paper models the master profile as a Zipf
// distribution with skew parameter theta in [0, 1.6]: the probability of
// accessing element i (1-based rank) is proportional to 1/i^theta.
#ifndef FRESHEN_RNG_ZIPF_H_
#define FRESHEN_RNG_ZIPF_H_

#include <cstddef>
#include <vector>

namespace freshen {

/// Returns the normalized Zipf(theta) probability vector over `n` ranks:
/// p[i] = (1/(i+1)^theta) / H_{n,theta}. theta = 0 yields the uniform
/// distribution. n must be > 0 and theta >= 0.
std::vector<double> ZipfProbabilities(size_t n, double theta);

/// Generalized harmonic number H_{n,theta} = sum_{i=1..n} i^{-theta},
/// accumulated with compensated summation.
double GeneralizedHarmonic(size_t n, double theta);

}  // namespace freshen

#endif  // FRESHEN_RNG_ZIPF_H_
