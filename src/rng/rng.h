// Deterministic pseudo-random number generation. All freshen experiments are
// seeded, so a given (seed, parameters) pair reproduces bit-identical
// workloads across runs and machines.
#ifndef FRESHEN_RNG_RNG_H_
#define FRESHEN_RNG_RNG_H_

#include <cstdint>

namespace freshen {

/// SplitMix64: used to expand a single 64-bit seed into the xoshiro state.
/// Passes BigCrush; see Steele, Lea & Flood (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 pseudo-random bits.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, high-quality general-purpose
/// engine. This is the engine behind every freshen distribution.
class Rng {
 public:
  /// Seeds the engine; any 64-bit value (including 0) is valid.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next 64 pseudo-random bits.
  uint64_t NextUint64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in (0, 1]: never returns 0, safe for log().
  double NextDoublePositive();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless method; the modulo bias is rejected away.
  uint64_t NextUint64Below(uint64_t bound);

  /// Uniform double in [lo, hi).
  double NextDoubleIn(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Returns a new engine seeded from this one's stream; use to give
  /// subsystems independent deterministic streams.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace freshen

#endif  // FRESHEN_RNG_RNG_H_
