#include "rng/zipf.h"

#include <cmath>

#include "common/macros.h"

namespace freshen {

double GeneralizedHarmonic(size_t n, double theta) {
  // Kahan-compensated: for n = 500,000 terms naive summation loses digits
  // that the probability tests would notice.
  double sum = 0.0;
  double comp = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    const double term =
        std::pow(static_cast<double>(i), -theta) - comp;
    const double next = sum + term;
    comp = (next - sum) - term;
    sum = next;
  }
  return sum;
}

std::vector<double> ZipfProbabilities(size_t n, double theta) {
  FRESHEN_CHECK(n > 0);
  FRESHEN_CHECK(theta >= 0.0);
  std::vector<double> probs(n);
  const double h = GeneralizedHarmonic(n, theta);
  for (size_t i = 0; i < n; ++i) {
    probs[i] = std::pow(static_cast<double>(i + 1), -theta) / h;
  }
  return probs;
}

}  // namespace freshen
