// Walker/Vose alias method: O(1) sampling from an arbitrary discrete
// distribution after O(N) setup. The simulator's user-request generator draws
// element ids from master profiles with up to 500,000 entries, so constant
// time per access event matters.
#ifndef FRESHEN_RNG_ALIAS_TABLE_H_
#define FRESHEN_RNG_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace freshen {

/// Pre-processed discrete distribution supporting O(1) Sample() calls.
class AliasTable {
 public:
  /// Builds the table from non-negative weights (need not be normalized).
  /// At least one weight must be positive.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight.
  size_t Sample(Rng& rng) const;

  /// Number of outcomes.
  size_t size() const { return prob_.size(); }

  /// The normalized probability of outcome `i` (for tests).
  double probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;      // Acceptance threshold per bucket.
  std::vector<uint32_t> alias_;   // Fallback outcome per bucket.
  std::vector<double> normalized_;
};

}  // namespace freshen

#endif  // FRESHEN_RNG_ALIAS_TABLE_H_
