// Samplers for the distributions the paper's workloads are built from:
// exponential inter-update gaps (Poisson change processes), gamma change
// rates, Pareto object sizes, and Poisson counts.
#ifndef FRESHEN_RNG_DISTRIBUTIONS_H_
#define FRESHEN_RNG_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "rng/rng.h"

namespace freshen {

/// Standard normal variate (polar/Marsaglia method).
double SampleStandardNormal(Rng& rng);

/// Exponential variate with the given rate (mean 1/rate). rate must be > 0.
double SampleExponential(Rng& rng, double rate);

/// Gamma variate with the given shape k > 0 and scale > 0 (mean k*scale,
/// variance k*scale^2). Marsaglia-Tsang squeeze for k >= 1, boosted for k < 1.
double SampleGamma(Rng& rng, double shape, double scale);

/// Gamma variate parameterized by mean and standard deviation, the way the
/// paper specifies its change-rate distribution (mean 2, UpdateStdDev sigma).
double SampleGammaMeanStdDev(Rng& rng, double mean, double stddev);

/// Pareto (Type I) variate with the given shape a > 0 and scale (minimum)
/// x_m > 0. Mean is a*x_m/(a-1) for a > 1; the paper uses shape 1.1 with the
/// scale chosen so the mean is 1.0 (section 5.3).
double SamplePareto(Rng& rng, double shape, double scale);

/// Returns the Pareto scale x_m that yields the requested mean for the given
/// shape (requires shape > 1).
double ParetoScaleForMean(double shape, double mean);

/// Poisson count with the given mean. Inversion for small means, PTRS
/// transformed-rejection for large.
uint64_t SamplePoisson(Rng& rng, double mean);

/// In-place Fisher-Yates shuffle.
template <typename T>
void Shuffle(Rng& rng, std::vector<T>& values) {
  for (size_t i = values.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.NextUint64Below(i));
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace freshen

#endif  // FRESHEN_RNG_DISTRIBUTIONS_H_
