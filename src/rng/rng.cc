#include "rng/rng.h"

#include "common/macros.h"

namespace freshen {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : state_) word = mixer.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoublePositive() {
  // (v + 1) / 2^53 lies in (0, 1].
  return (static_cast<double>(NextUint64() >> 11) + 1.0) * 0x1.0p-53;
}

uint64_t Rng::NextUint64Below(uint64_t bound) {
  FRESHEN_DCHECK(bound > 0);
  // Lemire (2019): multiply-shift with rejection of the biased zone.
  __uint128_t m = static_cast<__uint128_t>(NextUint64()) * bound;
  auto low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      m = static_cast<__uint128_t>(NextUint64()) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDoubleIn(double lo, double hi) {
  FRESHEN_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace freshen
