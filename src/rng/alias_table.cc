#include "rng/alias_table.h"

#include <cmath>

#include "common/macros.h"

namespace freshen {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  FRESHEN_CHECK(n > 0);
  FRESHEN_CHECK(n <= UINT32_MAX);
  double total = 0.0;
  for (double w : weights) {
    FRESHEN_CHECK(w >= 0.0 && std::isfinite(w));
    total += w;
  }
  FRESHEN_CHECK(total > 0.0);

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Vose's stable construction.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  // Remaining buckets are numerically 1.0.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t bucket = static_cast<size_t>(rng.NextUint64Below(prob_.size()));
  return rng.NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace freshen
