// Retry policy for sync fetches: capped attempts, a per-attempt timeout, and
// capped exponential backoff with decorrelated jitter (Brooker's AWS
// variant): each delay is uniform in [base, min(cap, 3 * previous_delay)],
// which decorrelates retry storms across tasks while never waiting less than
// `base` or more than `cap`.
#ifndef FRESHEN_SYNC_RETRY_H_
#define FRESHEN_SYNC_RETRY_H_

#include <cstdint>

#include "common/status.h"
#include "rng/rng.h"

namespace freshen {
namespace sync {

/// How hard the executor tries before declaring a sync failed.
struct RetryPolicy {
  /// Total attempts per task (1 = no retries). Must be >= 1.
  uint32_t max_attempts = 4;
  /// Minimum backoff delay before a retry, in transport seconds. Must be > 0.
  double base_delay_seconds = 0.05;
  /// Backoff cap, in transport seconds. Must be >= base_delay_seconds.
  double max_delay_seconds = 2.0;
  /// Per-attempt timeout: an attempt whose transport latency exceeds this is
  /// cut off and counted as DeadlineExceeded. Must be > 0.
  double attempt_timeout_seconds = 1.0;
};

/// Rejects non-positive delays/timeouts, max_attempts == 0, and a cap below
/// the base.
Status ValidateRetryPolicy(const RetryPolicy& policy);

/// Draws the next decorrelated-jitter delay. `previous_delay_seconds` is the
/// delay used before the last attempt (pass 0 before the first retry). The
/// result is always within [base_delay_seconds, max_delay_seconds].
double NextBackoffDelay(Rng& rng, const RetryPolicy& policy,
                        double previous_delay_seconds);

}  // namespace sync
}  // namespace freshen

#endif  // FRESHEN_SYNC_RETRY_H_
