// Per-source circuit breaker: stops a dead origin from burning the period's
// bandwidth budget on attempts that cannot succeed.
//
// States (the classic three-state machine):
//   closed    : requests flow; `failure_threshold` consecutive failures
//               trip the breaker open.
//   open      : requests are refused without touching the source; after
//               `open_duration_seconds` of cool-down the next request is
//               admitted as a half-open probe.
//   half-open : up to `half_open_max_probes` in-flight probes; a success
//               (x `success_threshold`) re-closes the breaker, any failure
//               re-opens it and restarts the cool-down.
//
// The breaker is driven by caller-supplied timestamps (transport seconds),
// not the wall clock, so the executor's deterministic commit replay and the
// simulator both work. All methods are thread-safe (one mutex; the breaker
// sits on the retry path, not the per-access hot path).
#ifndef FRESHEN_SYNC_CIRCUIT_BREAKER_H_
#define FRESHEN_SYNC_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>

#include "common/result.h"

namespace freshen {
namespace sync {

/// Breaker position; see the header comment for the transition rules.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Returns "closed" / "open" / "half_open".
const char* BreakerStateName(BreakerState state);

/// The three-state breaker. Timestamps must be non-decreasing per caller;
/// out-of-order times are tolerated (clamped by the cool-down check) but
/// transition counts are only meaningful with monotone time.
class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures (while closed) that trip the breaker. Must be
    /// >= 1.
    uint32_t failure_threshold = 5;
    /// Cool-down before an open breaker admits a half-open probe. Must be
    /// > 0.
    double open_duration_seconds = 0.5;
    /// Probes admitted while half-open before further requests are refused
    /// again. Must be >= 1.
    uint32_t half_open_max_probes = 1;
    /// Consecutive half-open successes required to re-close. Must be >= 1.
    uint32_t success_threshold = 1;
  };

  /// Rejects zero thresholds/probes and non-positive cool-downs.
  static Result<CircuitBreaker> Create(Options options);

  CircuitBreaker(CircuitBreaker&& other) noexcept;

  /// True when a request at time `now` may proceed. Transitions open ->
  /// half-open once the cool-down has elapsed; counts the admitted probe.
  bool AllowRequest(double now);

  /// Records a request outcome at time `now` and applies the transition
  /// rules above.
  void RecordSuccess(double now);
  void RecordFailure(double now);

  /// Current position.
  BreakerState state() const;

  /// Times the breaker tripped open (including half-open re-opens).
  uint64_t open_transitions() const;

 private:
  explicit CircuitBreaker(Options options) : options_(options) {}

  void TransitionToOpen(double now);  // Requires mu_ held.

  Options options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t consecutive_successes_ = 0;  // Half-open probe successes.
  uint32_t probes_in_flight_ = 0;       // Admitted, not yet recorded.
  double opened_at_ = 0.0;
  uint64_t open_transitions_ = 0;
};

}  // namespace sync
}  // namespace freshen

#endif  // FRESHEN_SYNC_CIRCUIT_BREAKER_H_
