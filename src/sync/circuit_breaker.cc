#include "sync/circuit_breaker.h"

#include <cmath>

namespace freshen {
namespace sync {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

Result<CircuitBreaker> CircuitBreaker::Create(Options options) {
  if (options.failure_threshold == 0) {
    return Status::InvalidArgument("failure_threshold must be >= 1");
  }
  if (!(options.open_duration_seconds > 0.0) ||
      !std::isfinite(options.open_duration_seconds)) {
    return Status::InvalidArgument("open_duration_seconds must be > 0");
  }
  if (options.half_open_max_probes == 0) {
    return Status::InvalidArgument("half_open_max_probes must be >= 1");
  }
  if (options.success_threshold == 0) {
    return Status::InvalidArgument("success_threshold must be >= 1");
  }
  return CircuitBreaker(options);
}

CircuitBreaker::CircuitBreaker(CircuitBreaker&& other) noexcept
    : options_(other.options_) {
  std::lock_guard<std::mutex> lock(other.mu_);
  state_ = other.state_;
  consecutive_failures_ = other.consecutive_failures_;
  consecutive_successes_ = other.consecutive_successes_;
  probes_in_flight_ = other.probes_in_flight_;
  opened_at_ = other.opened_at_;
  open_transitions_ = other.open_transitions_;
}

bool CircuitBreaker::AllowRequest(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - opened_at_ < options_.open_duration_seconds) return false;
      state_ = BreakerState::kHalfOpen;
      consecutive_successes_ = 0;
      probes_in_flight_ = 1;
      return true;
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ >= options_.half_open_max_probes) return false;
      ++probes_in_flight_;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess(double) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kOpen:
      // A late success from before the trip; ignored.
      break;
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++consecutive_successes_ >= options_.success_threshold) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        consecutive_successes_ = 0;
        probes_in_flight_ = 0;
      }
      break;
  }
}

void CircuitBreaker::RecordFailure(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TransitionToOpen(now);
      }
      break;
    case BreakerState::kOpen:
      break;
    case BreakerState::kHalfOpen:
      // The probe failed: back to open, cool-down restarts.
      TransitionToOpen(now);
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::open_transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_transitions_;
}

void CircuitBreaker::TransitionToOpen(double now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  consecutive_successes_ = 0;
  probes_in_flight_ = 0;
  ++open_transitions_;
}

}  // namespace sync
}  // namespace freshen
