#include "sync/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "obs/recorder.h"
#include "obs/trace.h"

namespace freshen {
namespace sync {
namespace {

// Flight-recorder instants for the commit replay. All events are virtual
// time (period units) on the sync-commit track; phase 2 runs on one thread
// and its trace depends only on (seed, tasks), so the recorded stream is
// deterministic at any pool size.
void EmitSyncEvent(obs::EventRecorder& recorder, const char* name,
                   double ts_periods, double element, double arg1,
                   const char* arg1_name) {
  if (!recorder.enabled()) return;
  obs::Event event;
  event.name = name;
  event.category = "sync";
  event.clock = obs::EventClock::kVirtual;
  event.track = obs::kTrackSyncCommit;
  event.ts = ts_periods;
  event.arg0 = element;
  event.arg0_name = "element";
  event.arg1 = arg1;
  event.arg1_name = arg1_name;
  event.phase = obs::EventPhase::kInstant;
  recorder.Emit(event);
}

const char* BreakerEventName(BreakerState state) {
  switch (state) {
    case BreakerState::kOpen:
      return "breaker_open";
    case BreakerState::kHalfOpen:
      return "breaker_half_open";
    case BreakerState::kClosed:
      return "breaker_closed";
  }
  return "breaker_unknown";
}

}  // namespace

const char* SyncOutcomeKindName(SyncOutcomeKind kind) {
  switch (kind) {
    case SyncOutcomeKind::kApplied:
      return "applied";
    case SyncOutcomeKind::kFailed:
      return "failed";
    case SyncOutcomeKind::kBreakerOpen:
      return "breaker_open";
    case SyncOutcomeKind::kDropped:
      return "dropped";
  }
  return "unknown";
}

Result<std::unique_ptr<SyncExecutor>> SyncExecutor::Create(Source* source,
                                                           Options options) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  if (options.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (!(options.period_seconds > 0.0) ||
      !std::isfinite(options.period_seconds)) {
    return Status::InvalidArgument("period_seconds must be > 0");
  }
  FRESHEN_RETURN_IF_ERROR(ValidateRetryPolicy(options.retry));
  FRESHEN_ASSIGN_OR_RETURN(CircuitBreaker breaker,
                           CircuitBreaker::Create(options.breaker));
  return std::unique_ptr<SyncExecutor>(
      new SyncExecutor(source, std::move(breaker), options));
}

SyncExecutor::SyncExecutor(Source* source, CircuitBreaker breaker,
                           Options options)
    : source_(source),
      options_(options),
      breaker_(std::move(breaker)),
      backoff_rng_(options.seed ^ 0x73796e63ULL),
      pool_(std::make_unique<ThreadPool>(ThreadPool::Options{
          options.num_threads, options.queue_capacity})),
      registry_(options.registry != nullptr
                    ? options.registry
                    : &obs::MetricsRegistry::Global()) {
  const obs::Labels labels = {{"source", source_->name()}};
  tasks_counter_ = registry_->GetCounter("freshen_sync_tasks_total", labels);
  applied_counter_ =
      registry_->GetCounter("freshen_sync_applied_total", labels);
  attempts_counter_ =
      registry_->GetCounter("freshen_sync_attempts_total", labels);
  retries_counter_ =
      registry_->GetCounter("freshen_sync_retries_total", labels);
  failures_counter_ =
      registry_->GetCounter("freshen_sync_failures_total", labels);
  dropped_counter_ =
      registry_->GetCounter("freshen_sync_dropped_total", labels);
  breaker_skipped_counter_ =
      registry_->GetCounter("freshen_sync_breaker_skipped_total", labels);
  breaker_opens_counter_ =
      registry_->GetCounter("freshen_sync_breaker_opens_total", labels);
  wasted_bandwidth_counter_ =
      registry_->GetCounter("freshen_sync_wasted_bandwidth_total", labels);
  queue_depth_gauge_ =
      registry_->GetGauge("freshen_sync_queue_depth", labels);
  fetch_latency_histogram_ = registry_->GetHistogram(
      "freshen_sync_fetch_latency_seconds", obs::LatencySecondsBuckets(),
      labels);
}

std::vector<SyncOutcome> SyncExecutor::Execute(
    const std::vector<SyncTask>& tasks) {
  obs::ScopedSpan span("sync_execute", *registry_);
  last_stats_ = ExecuteStats{};
  last_stats_.tasks = tasks.size();
  tasks_counter_->Add(static_cast<double>(tasks.size()));

  // Deterministic task order: scheduled time, element as tie-break.
  std::vector<size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (tasks[a].time != tasks[b].time) return tasks[a].time < tasks[b].time;
    return tasks[a].element < tasks[b].element;
  });

  struct TaskPlan {
    SyncTask task;
    uint64_t seq = 0;
    bool dropped = false;
    std::vector<AttemptRecord> trace;
  };
  std::vector<TaskPlan> plans(tasks.size());
  for (size_t i = 0; i < order.size(); ++i) {
    plans[i].task = tasks[order[i]];
    plans[i].seq = next_seq_++;
  }

  // Phase 1 — speculative fetch: each admitted task runs its whole attempt
  // loop on the pool. Traces depend only on (seed, seq, attempt), never on
  // scheduling, so phase 2 can replay them deterministically.
  const RetryPolicy& retry = options_.retry;
  size_t max_queue_depth = 0;
  for (TaskPlan& plan : plans) {
    const double scheduled_seconds = plan.task.time * options_.period_seconds;
    const Status submitted =
        pool_->TrySubmit([this, &plan, &retry, scheduled_seconds] {
          plan.trace.reserve(retry.max_attempts);
          for (uint32_t attempt = 0; attempt < retry.max_attempts; ++attempt) {
            const FetchResult fetched = source_->Fetch(
                {plan.task.element, scheduled_seconds, plan.seq, attempt});
            AttemptRecord record;
            record.timed_out =
                fetched.latency_seconds > retry.attempt_timeout_seconds;
            record.latency_seconds =
                std::min(fetched.latency_seconds,
                         retry.attempt_timeout_seconds);
            record.ok = fetched.status.ok() && !record.timed_out;
            plan.trace.push_back(record);
            if (record.ok) break;
          }
        });
    if (!submitted.ok()) plan.dropped = true;
    max_queue_depth = std::max(max_queue_depth, pool_->QueueDepth());
  }
  pool_->Wait();
  queue_depth_gauge_->Set(static_cast<double>(max_queue_depth));

  // Phase 2 — deterministic commit: replay each trace in scheduled order
  // against the breaker, settling completion events in virtual-time order so
  // breaker transitions are reproducible.
  using Completion = std::pair<double, bool>;  // (completion seconds, ok).
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions;
  const auto settle_until = [&](double now_seconds) {
    while (!completions.empty() && completions.top().first <= now_seconds) {
      const Completion done = completions.top();
      completions.pop();
      if (done.second) {
        breaker_.RecordSuccess(done.first);
      } else {
        breaker_.RecordFailure(done.first);
      }
    }
  };

  obs::EventRecorder& recorder = obs::EventRecorder::Global();
  BreakerState last_breaker_state = breaker_.state();
  // Emits one instant whenever the breaker's state moved since the last
  // check; ts is the virtual time the transition became observable.
  const auto note_breaker = [&](double ts_periods) {
    const BreakerState state = breaker_.state();
    if (state == last_breaker_state) return;
    last_breaker_state = state;
    EmitSyncEvent(recorder, BreakerEventName(state), ts_periods, -1.0, 0.0,
                  nullptr);
  };

  std::vector<SyncOutcome> outcomes;
  outcomes.reserve(plans.size());
  for (const TaskPlan& plan : plans) {
    SyncOutcome outcome;
    outcome.element = plan.task.element;
    outcome.scheduled_time = plan.task.time;
    const double element = static_cast<double>(plan.task.element);
    if (plan.dropped) {
      outcome.kind = SyncOutcomeKind::kDropped;
      ++last_stats_.dropped;
      dropped_counter_->Increment();
      EmitSyncEvent(recorder, "sync_dropped", plan.task.time, element, 0.0,
                    nullptr);
      outcomes.push_back(outcome);
      continue;
    }
    const double scheduled_seconds = plan.task.time * options_.period_seconds;
    settle_until(scheduled_seconds);
    note_breaker(plan.task.time);
    if (!breaker_.AllowRequest(scheduled_seconds)) {
      outcome.kind = SyncOutcomeKind::kBreakerOpen;
      ++last_stats_.breaker_open;
      breaker_skipped_counter_->Increment();
      EmitSyncEvent(recorder, "sync_breaker_skip", plan.task.time, element,
                    0.0, nullptr);
      outcomes.push_back(outcome);
      continue;
    }
    note_breaker(plan.task.time);
    double now_seconds = scheduled_seconds;
    double backoff = 0.0;
    bool success = false;
    for (size_t attempt = 0; attempt < plan.trace.size(); ++attempt) {
      const AttemptRecord& record = plan.trace[attempt];
      outcome.attempts += 1;
      ++last_stats_.attempts;
      attempts_counter_->Increment();
      if (attempt > 0) {
        ++last_stats_.retries;
        retries_counter_->Increment();
        EmitSyncEvent(recorder, "sync_retry",
                      now_seconds / options_.period_seconds, element,
                      static_cast<double>(attempt), "attempt");
      }
      EmitSyncEvent(recorder, "sync_attempt",
                    now_seconds / options_.period_seconds, element,
                    static_cast<double>(attempt), "attempt");
      fetch_latency_histogram_->Record(record.latency_seconds);
      now_seconds += record.latency_seconds;
      if (record.ok) {
        success = true;
        break;
      }
      if (record.timed_out) {
        EmitSyncEvent(recorder, "sync_timeout",
                      now_seconds / options_.period_seconds, element,
                      static_cast<double>(attempt), "attempt");
      }
      outcome.wasted_bandwidth += plan.task.size;
      wasted_bandwidth_counter_->Add(plan.task.size);
      if (attempt + 1 < plan.trace.size()) {
        backoff = NextBackoffDelay(backoff_rng_, retry, backoff);
        now_seconds += backoff;
      }
    }
    last_stats_.wasted_bandwidth += outcome.wasted_bandwidth;
    const double finish_periods = now_seconds / options_.period_seconds;
    if (success) {
      outcome.kind = SyncOutcomeKind::kApplied;
      // Scheduled time plus transport elapsed, converted back to periods.
      // Kept as an offset from the scheduled time so a zero-latency source
      // (PerfectSource) applies at exactly the scheduled instant.
      outcome.apply_time =
          plan.task.time +
          (now_seconds - scheduled_seconds) / options_.period_seconds;
      ++last_stats_.applied;
      applied_counter_->Increment();
      EmitSyncEvent(recorder, "sync_applied", finish_periods, element,
                    static_cast<double>(outcome.attempts), "attempts");
    } else {
      outcome.kind = SyncOutcomeKind::kFailed;
      ++last_stats_.failed;
      failures_counter_->Increment();
      EmitSyncEvent(recorder, "sync_failed", finish_periods, element,
                    static_cast<double>(outcome.attempts), "attempts");
    }
    completions.emplace(now_seconds, success);
    outcomes.push_back(outcome);
  }
  settle_until(std::numeric_limits<double>::infinity());
  if (!plans.empty()) {
    note_breaker(plans.back().task.time);
  }

  const uint64_t opens = breaker_.open_transitions();
  breaker_opens_counter_->Add(static_cast<double>(opens - breaker_opens_seen_));
  breaker_opens_seen_ = opens;
  return outcomes;
}

}  // namespace sync
}  // namespace freshen
