#include "sync/retry.h"

#include <algorithm>
#include <cmath>

namespace freshen {
namespace sync {

Status ValidateRetryPolicy(const RetryPolicy& policy) {
  if (policy.max_attempts == 0) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (!(policy.base_delay_seconds > 0.0) ||
      !std::isfinite(policy.base_delay_seconds)) {
    return Status::InvalidArgument("base_delay_seconds must be > 0");
  }
  if (!(policy.max_delay_seconds >= policy.base_delay_seconds) ||
      !std::isfinite(policy.max_delay_seconds)) {
    return Status::InvalidArgument(
        "max_delay_seconds must be >= base_delay_seconds");
  }
  if (!(policy.attempt_timeout_seconds > 0.0) ||
      !std::isfinite(policy.attempt_timeout_seconds)) {
    return Status::InvalidArgument("attempt_timeout_seconds must be > 0");
  }
  return Status::OK();
}

double NextBackoffDelay(Rng& rng, const RetryPolicy& policy,
                        double previous_delay_seconds) {
  const double prev =
      std::max(policy.base_delay_seconds, previous_delay_seconds);
  const double hi = std::min(policy.max_delay_seconds, 3.0 * prev);
  return rng.NextDoubleIn(policy.base_delay_seconds, hi);
}

}  // namespace sync
}  // namespace freshen
