// The transport boundary of the sync executor: a Source is where a fetch of
// one element's current copy actually happens, with all the failure modes a
// real origin has — latency, errors, stalls, outages. The executor
// (sync/executor.h) owns retries, timeouts, and circuit breaking; a Source
// only models a single attempt.
//
// Two implementations:
//   PerfectSource   : every attempt succeeds instantly — reproduces the
//                     inline-sync semantics of OnlineFreshenLoop bit-for-bit.
//   SimulatedSource : configurable latency distribution plus a deterministic,
//                     seeded fault injector (error rate, stall rate, periodic
//                     burst outages). Every attempt's dice roll is a pure
//                     function of (seed, task sequence, attempt), so outcomes
//                     are reproducible regardless of thread interleaving.
#ifndef FRESHEN_SYNC_SOURCE_H_
#define FRESHEN_SYNC_SOURCE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/result.h"

namespace freshen {
namespace sync {

/// One fetch attempt, identified deterministically: `seq` is the executor's
/// global task sequence number (monotone across Execute calls) and `attempt`
/// counts retries within the task (0 = first try).
struct FetchRequest {
  /// Element being fetched.
  size_t element = 0;
  /// The task's scheduled wall time in transport seconds (drives time-based
  /// faults such as burst outages).
  double scheduled_seconds = 0.0;
  /// Executor-wide task sequence number (deterministic, assigned in
  /// scheduled order).
  uint64_t seq = 0;
  /// Attempt index within the task (0-based).
  uint32_t attempt = 0;
};

/// The outcome of one attempt. `status` OK means the copy arrived after
/// `latency_seconds` of transport time; a non-OK status (Unavailable for
/// errors/outages) still consumed `latency_seconds` before failing. A stalled
/// attempt reports its full stall latency — the executor's per-attempt
/// timeout converts it into a DeadlineExceeded failure.
struct FetchResult {
  Status status;
  double latency_seconds = 0.0;
};

/// A fetchable origin. Implementations must be thread-safe: Fetch is called
/// concurrently from executor worker threads.
class Source {
 public:
  virtual ~Source() = default;

  /// Performs one fetch attempt.
  virtual FetchResult Fetch(const FetchRequest& request) = 0;

  /// Stable short name ("perfect", "simulated") for logs and metrics.
  virtual const char* name() const = 0;
};

/// The infallible, zero-latency origin: what the inline-sync path assumes.
class PerfectSource final : public Source {
 public:
  FetchResult Fetch(const FetchRequest& request) override;
  const char* name() const override { return "perfect"; }
};

/// A deterministic lossy origin. Latency is base + exponential jitter; faults
/// are seeded per (seq, attempt) so a run replays identically.
class SimulatedSource final : public Source {
 public:
  struct Options {
    /// Floor latency of every attempt.
    double base_latency_seconds = 0.002;
    /// Mean of the exponential jitter added on top of the base (0 = none).
    double mean_jitter_seconds = 0.008;
    /// Probability an attempt fails with Unavailable (after its latency).
    double error_rate = 0.0;
    /// Probability an attempt stalls: it "succeeds" only after
    /// `stall_latency_seconds`, which the executor's per-attempt timeout
    /// turns into a DeadlineExceeded failure.
    double stall_rate = 0.0;
    /// How long a stalled attempt takes.
    double stall_latency_seconds = 60.0;
    /// Burst outages: every `outage_interval_seconds` of scheduled time the
    /// source goes hard-down for `outage_duration_seconds` (attempts fail
    /// fast with Unavailable). 0 disables outages.
    double outage_interval_seconds = 0.0;
    double outage_duration_seconds = 0.0;
    /// Seed for all fault/latency dice.
    uint64_t seed = 47;
  };

  /// Validates rates/latencies (rates in [0,1], latencies finite and >= 0,
  /// outage duration <= interval when enabled).
  static Result<SimulatedSource> Create(Options options);

  // Movable (the atomic fault switch is copied by value) so Create can
  // return through Result.
  SimulatedSource(SimulatedSource&& other) noexcept
      : options_(other.options_), faults_enabled_(other.faults_enabled()) {}

  FetchResult Fetch(const FetchRequest& request) override;
  const char* name() const override { return "simulated"; }

  /// Master switch for all injected faults (errors, stalls, outages); latency
  /// is still sampled. Flip to false to model the fault clearing — safe to
  /// call while the executor is running.
  void SetFaultsEnabled(bool enabled) {
    faults_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool faults_enabled() const {
    return faults_enabled_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  explicit SimulatedSource(Options options) : options_(options) {}

  Options options_;
  std::atomic<bool> faults_enabled_{true};
};

}  // namespace sync
}  // namespace freshen

#endif  // FRESHEN_SYNC_SOURCE_H_
