// SyncExecutor — the layer that turns a planner schedule into actual fetches
// against a Source that can be slow, flaky, or down. The planner and the
// online loop stay in abstract period time; the executor owns transport
// reality: a thread pool, a bounded work queue with fail-fast backpressure,
// per-attempt timeouts, capped-exponential-backoff retries with decorrelated
// jitter, and a per-source circuit breaker.
//
// Execution is two-phase so results are bit-reproducible despite real
// threads:
//   1. Speculative fetch (parallel): every admitted task runs its attempt
//      loop against the Source on the pool, recording an attempt trace.
//      Source outcomes are pure functions of (seed, seq, attempt), so the
//      trace does not depend on thread interleaving.
//   2. Deterministic commit (sequential): tasks are replayed in scheduled
//      order against the retry policy and the circuit breaker, charging
//      bandwidth, choosing apply times, and updating metrics. Completion
//      events settle into the breaker in virtual-time order, so breaker
//      behavior is identical run to run.
// A breaker-refused task never charges bandwidth (its speculative trace is
// discarded); a queue-overflow drop never reaches the source at all.
//
// Failure-semantics contract (what the online loop relies on):
//   * kApplied    : the copy refreshes at `apply_time` (scheduled time plus
//                   total transport time, in period units).
//   * kFailed     : all attempts failed; the copy stays stale; every
//                   attempt's bandwidth is counted as wasted.
//   * kBreakerOpen: refused locally; no attempts, no bandwidth.
//   * kDropped    : refused by queue backpressure; no attempts, no bandwidth.
#ifndef FRESHEN_SYNC_EXECUTOR_H_
#define FRESHEN_SYNC_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "sync/circuit_breaker.h"
#include "sync/retry.h"
#include "sync/source.h"

namespace freshen {
namespace sync {

/// One due sync from the planner's schedule.
struct SyncTask {
  /// Element to refresh.
  size_t element = 0;
  /// Scheduled time, in period units (the online loop's clock).
  double time = 0.0;
  /// Bandwidth cost of one fetch attempt of this element.
  double size = 1.0;
};

/// Why a task ended the way it did.
enum class SyncOutcomeKind {
  kApplied,      // Fetched; apply at `apply_time`.
  kFailed,       // Exhausted retries; copy stays stale.
  kBreakerOpen,  // Refused by the circuit breaker; no attempts made.
  kDropped,      // Refused by queue backpressure; no attempts made.
};

/// Returns "applied" / "failed" / "breaker_open" / "dropped".
const char* SyncOutcomeKindName(SyncOutcomeKind kind);

/// The executor's verdict on one task, in scheduled order.
struct SyncOutcome {
  size_t element = 0;
  SyncOutcomeKind kind = SyncOutcomeKind::kApplied;
  /// The task's scheduled time (period units).
  double scheduled_time = 0.0;
  /// When the refreshed copy lands (period units): scheduled time plus all
  /// attempt latencies and backoff delays. Meaningful only for kApplied.
  double apply_time = 0.0;
  /// Attempts actually made (0 for breaker-refused / dropped tasks).
  uint32_t attempts = 0;
  /// Bandwidth burned by failed attempts (attempts minus the final success,
  /// each costing `size`).
  double wasted_bandwidth = 0.0;
};

/// Aggregate view of one Execute call (sums over its outcomes).
struct ExecuteStats {
  uint64_t tasks = 0;
  uint64_t applied = 0;
  uint64_t failed = 0;
  uint64_t breaker_open = 0;
  uint64_t dropped = 0;
  uint64_t attempts = 0;
  uint64_t retries = 0;
  double wasted_bandwidth = 0.0;
};

/// Executes batches of due syncs concurrently against one Source. Not
/// movable; create on the heap via Create(). Thread-compatible: Execute is
/// meant to be called from one coordinator thread at a time.
class SyncExecutor {
 public:
  struct Options {
    /// Worker threads fetching in parallel.
    size_t num_threads = 4;
    /// Bounded work-queue capacity; tasks beyond it are dropped (fail-fast
    /// backpressure), counted in freshen_sync_dropped.
    size_t queue_capacity = 1024;
    /// Retry/backoff/timeout policy.
    RetryPolicy retry;
    /// Circuit-breaker thresholds.
    CircuitBreaker::Options breaker;
    /// Transport seconds per period unit: task times are multiplied by this
    /// before hitting the Source/breaker, and transport durations divided by
    /// it on the way back. Must be > 0.
    double period_seconds = 1.0;
    /// Seed for backoff jitter.
    uint64_t seed = 31;
    /// Registry for freshen_sync_* metrics; nullptr means the process-wide
    /// obs::MetricsRegistry::Global().
    obs::MetricsRegistry* registry = nullptr;
  };

  /// Validates options and spins up the pool. `source` must outlive the
  /// executor and be thread-safe.
  static Result<std::unique_ptr<SyncExecutor>> Create(Source* source,
                                                      Options options);

  /// Executes one batch of due syncs (one period's worth, typically).
  /// Returns one outcome per task, ordered by scheduled time. Breaker state
  /// and the task sequence persist across calls, so consecutive batches
  /// model one continuous timeline; task times must be non-decreasing
  /// across calls for breaker cool-downs to behave.
  std::vector<SyncOutcome> Execute(const std::vector<SyncTask>& tasks);

  /// Aggregate counters for the most recent Execute call.
  const ExecuteStats& last_stats() const { return last_stats_; }

  /// The breaker, for inspection (state(), open_transitions()).
  const CircuitBreaker& breaker() const { return breaker_; }

  /// The source fetched from.
  const Source& source() const { return *source_; }

  const Options& options() const { return options_; }

 private:
  SyncExecutor(Source* source, CircuitBreaker breaker, Options options);

  // One attempt as recorded by the speculative fetch phase.
  struct AttemptRecord {
    bool ok = false;
    bool timed_out = false;
    double latency_seconds = 0.0;
  };

  Source* source_;
  Options options_;
  CircuitBreaker breaker_;
  Rng backoff_rng_;
  uint64_t next_seq_ = 0;
  uint64_t breaker_opens_seen_ = 0;
  ExecuteStats last_stats_;
  std::unique_ptr<ThreadPool> pool_;

  // Cached registry handles (valid for the registry's lifetime).
  obs::Counter* tasks_counter_;
  obs::Counter* applied_counter_;
  obs::Counter* attempts_counter_;
  obs::Counter* retries_counter_;
  obs::Counter* failures_counter_;
  obs::Counter* dropped_counter_;
  obs::Counter* breaker_skipped_counter_;
  obs::Counter* breaker_opens_counter_;
  obs::Counter* wasted_bandwidth_counter_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* fetch_latency_histogram_;
  obs::MetricsRegistry* registry_;
};

}  // namespace sync
}  // namespace freshen

#endif  // FRESHEN_SYNC_EXECUTOR_H_
