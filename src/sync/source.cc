#include "sync/source.h"

#include <cmath>

#include "common/string_util.h"
#include "rng/distributions.h"
#include "rng/rng.h"

namespace freshen {
namespace sync {
namespace {

// Mixes the source seed with the attempt identity into an independent RNG:
// outcomes depend only on (seed, seq, attempt), never on thread timing.
Rng AttemptRng(uint64_t seed, const FetchRequest& request) {
  SplitMix64 mixer(seed ^ (request.seq * 0x9e3779b97f4a7c15ULL));
  mixer.Next();
  return Rng(mixer.Next() ^ (static_cast<uint64_t>(request.attempt) + 1));
}

}  // namespace

FetchResult PerfectSource::Fetch(const FetchRequest&) {
  return {Status::OK(), 0.0};
}

Result<SimulatedSource> SimulatedSource::Create(Options options) {
  const struct {
    const char* name;
    double value;
  } rates[] = {{"error_rate", options.error_rate},
               {"stall_rate", options.stall_rate}};
  for (const auto& rate : rates) {
    if (!(rate.value >= 0.0 && rate.value <= 1.0)) {
      return Status::InvalidArgument(
          StrFormat("%s must be in [0, 1]", rate.name));
    }
  }
  if (options.error_rate + options.stall_rate > 1.0) {
    return Status::InvalidArgument("error_rate + stall_rate must be <= 1");
  }
  const struct {
    const char* name;
    double value;
  } latencies[] = {{"base_latency_seconds", options.base_latency_seconds},
                   {"mean_jitter_seconds", options.mean_jitter_seconds},
                   {"stall_latency_seconds", options.stall_latency_seconds},
                   {"outage_interval_seconds", options.outage_interval_seconds},
                   {"outage_duration_seconds", options.outage_duration_seconds}};
  for (const auto& latency : latencies) {
    if (!(latency.value >= 0.0) || !std::isfinite(latency.value)) {
      return Status::InvalidArgument(
          StrFormat("%s must be finite and >= 0", latency.name));
    }
  }
  if (options.outage_interval_seconds > 0.0 &&
      options.outage_duration_seconds > options.outage_interval_seconds) {
    return Status::InvalidArgument(
        "outage_duration_seconds must be <= outage_interval_seconds");
  }
  return SimulatedSource(options);
}

FetchResult SimulatedSource::Fetch(const FetchRequest& request) {
  Rng rng = AttemptRng(options_.seed, request);
  double latency = options_.base_latency_seconds;
  if (options_.mean_jitter_seconds > 0.0) {
    latency += SampleExponential(rng, 1.0 / options_.mean_jitter_seconds);
  }
  if (!faults_enabled()) {
    return {Status::OK(), latency};
  }
  // Burst outage: hard-down window, fails fast (connection refused).
  if (options_.outage_interval_seconds > 0.0 &&
      std::fmod(request.scheduled_seconds, options_.outage_interval_seconds) <
          options_.outage_duration_seconds) {
    return {Status::Unavailable("source outage"),
            options_.base_latency_seconds};
  }
  const double roll = rng.NextDouble();
  if (roll < options_.error_rate) {
    return {Status::Unavailable("injected fetch error"), latency};
  }
  if (roll < options_.error_rate + options_.stall_rate) {
    return {Status::OK(), options_.stall_latency_seconds};
  }
  return {Status::OK(), latency};
}

}  // namespace sync
}  // namespace freshen
